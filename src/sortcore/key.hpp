// Key projection utilities.
//
// Every sort in the library is parameterized by a key-projection callable
// `KeyFn : const T& -> K` with K totally ordered. The paper's headline design
// point is that SDS-Sort never needs a *secondary* sorting key: the
// projection is the one and only key, and skew-aware partitioning handles
// duplicates. `IdentityKey` covers plain arithmetic element types.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <functional>
#include <limits>
#include <type_traits>

namespace sdss {

struct IdentityKey {
  template <typename T>
  const T& operator()(const T& v) const noexcept {
    return v;
  }
};

template <typename F, typename T>
concept KeyFunction = std::invocable<const F&, const T&> &&
                      std::totally_ordered<std::remove_cvref_t<
                          std::invoke_result_t<const F&, const T&>>>;

template <typename F, typename T>
using KeyType = std::remove_cvref_t<std::invoke_result_t<const F&, const T&>>;

/// Strict-weak-order comparator over elements induced by a key projection.
template <typename KeyFn>
struct KeyLess {
  KeyFn key;
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return key(a) < key(b);
  }
};

template <typename KeyFn>
KeyLess<KeyFn> by_key(KeyFn kf) {
  return KeyLess<KeyFn>{std::move(kf)};
}

/// Customization point for the largest representable key value, used as a
/// harmless sentinel when an empty rank must still contribute sample pivots
/// (they sort to the top of the global pivot pool and never cut a range).
/// The default covers every arithmetic type; specialize for composite keys.
template <typename K, typename = void>
struct KeyLimits {
  static K max() { return std::numeric_limits<K>::max(); }
};

/// Fixed-length byte-string keys (e.g. the 10-byte GraySort key).
template <std::size_t N>
struct KeyLimits<std::array<std::uint8_t, N>> {
  static std::array<std::uint8_t, N> max() {
    std::array<std::uint8_t, N> k;
    k.fill(0xff);
    return k;
  }
};

}  // namespace sdss
