// Selection of the per-chunk sorting kernel — the paper's "dynamic
// selection of data processing algorithms" knob, shared between the
// shared-memory sorting library and the distributed driver's Config.
#pragma once

namespace sdss {

enum class LocalSortAlgo {
  kComparison,  ///< std::sort / std::stable_sort
  kRadix,       ///< LSD radix (unsigned integer keys only; always stable)
  kAuto,        ///< radix when the key is an unsigned integer, else comparison
};

}  // namespace sdss
