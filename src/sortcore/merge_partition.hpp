// Skew-aware partitioning of sorted chunks for parallel merging.
//
// Given c sorted chunks, split the merged value space into `parts` pieces of
// near-equal TOTAL size so that `parts` threads can merge independently.
// Plain sample-based partitioning (used by HykSort's shared-memory merge)
// places every copy of a duplicated pivot value in one part, so one thread
// inherits nearly all of a skewed distribution (paper Fig. 6a). The
// skew-aware method detects duplicated pivots — exactly like SdssReplicated
// does at the distributed level — and splits the run of duplicates evenly
// (fast version) or in chunk-major order (stable version) across the parts
// that share the pivot value.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "sortcore/key.hpp"

namespace sdss {

enum class MergePartitionMethod {
  kSkewAware,   ///< duplicate-aware even split (SDS-Sort)
  kSampleOnly,  ///< plain upper_bound on sampled pivots (baseline)
};

/// Partition plan: part t of chunk j is [bounds[t][j], bounds[t+1][j]).
struct MergePartition {
  std::vector<std::vector<std::size_t>> bounds;  // (parts+1) x chunks

  std::size_t parts() const {
    return bounds.empty() ? 0 : bounds.size() - 1;
  }

  std::size_t part_size(std::size_t t) const {
    std::size_t s = 0;
    for (std::size_t j = 0; j < bounds[t].size(); ++j) {
      s += bounds[t + 1][j] - bounds[t][j];
    }
    return s;
  }

  std::vector<std::size_t> part_sizes() const {
    std::vector<std::size_t> out(parts());
    for (std::size_t t = 0; t < out.size(); ++t) out[t] = part_size(t);
    return out;
  }
};

namespace detail {

/// Regular sampling of pivot keys from each sorted chunk, then global pivot
/// selection at regular stride — the shared-memory mirror of the paper's
/// Section 2.4.
template <typename T, typename KeyFn>
std::vector<KeyType<KeyFn, T>> sample_pivots(
    std::span<const std::span<const T>> chunks, std::size_t parts, KeyFn kf) {
  using K = KeyType<KeyFn, T>;
  std::vector<K> samples;
  samples.reserve(chunks.size() * parts);
  for (const auto& c : chunks) {
    if (c.empty()) continue;
    // parts-1 samples at regular stride (the last element of each stripe).
    for (std::size_t s = 1; s < parts; ++s) {
      const std::size_t idx = s * c.size() / parts;
      samples.push_back(kf(c[idx == 0 ? 0 : idx - 1]));
    }
  }
  std::sort(samples.begin(), samples.end());
  std::vector<K> pivots;
  pivots.reserve(parts - 1);
  if (samples.empty()) return pivots;
  for (std::size_t t = 1; t < parts; ++t) {
    std::size_t idx = t * samples.size() / parts;
    if (idx > 0) --idx;
    pivots.push_back(samples[idx]);
  }
  return pivots;
}

}  // namespace detail

/// Build a partition plan for merging `chunks` with `parts` parallel parts.
/// `stable` selects the chunk-major duplicate split (relative order of equal
/// keys across chunks is preserved by part boundaries).
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
MergePartition plan_merge_partition(
    std::span<const std::span<const T>> chunks, std::size_t parts, bool stable,
    MergePartitionMethod method = MergePartitionMethod::kSkewAware,
    KeyFn kf = {}) {
  using K = KeyType<KeyFn, T>;
  const std::size_t nc = chunks.size();
  MergePartition plan;
  if (parts == 0) parts = 1;
  plan.bounds.assign(parts + 1, std::vector<std::size_t>(nc, 0));
  for (std::size_t j = 0; j < nc; ++j) {
    plan.bounds[parts][j] = chunks[j].size();
  }
  if (parts == 1 || nc == 0) return plan;

  const std::vector<K> pivots = detail::sample_pivots(chunks, parts, kf);
  if (pivots.empty()) return plan;  // all chunks empty
  auto key_less = [&kf](const T& v, const K& k) { return kf(v) < k; };
  auto less_key = [&kf](const K& k, const T& v) { return k < kf(v); };

  auto upper = [&](std::size_t j, const K& k) {
    return static_cast<std::size_t>(
        std::upper_bound(chunks[j].begin(), chunks[j].end(), k, less_key) -
        chunks[j].begin());
  };
  auto lower = [&](std::size_t j, const K& k) {
    return static_cast<std::size_t>(
        std::lower_bound(chunks[j].begin(), chunks[j].end(), k, key_less) -
        chunks[j].begin());
  };

  std::size_t t = 0;
  while (t + 1 < parts) {
    const K v = pivots[t];
    // Length of the run of equal pivots starting at t (SdssReplicated's rs).
    std::size_t rs = 1;
    while (t + rs < pivots.size() && !(pivots[t + rs] < v) && !(v < pivots[t + rs])) {
      ++rs;
    }
    if (method == MergePartitionMethod::kSampleOnly || rs == 1) {
      // Plain partition: every boundary of the run lands at upper_bound(v),
      // which for duplicated pivots gives the degenerate empty parts the
      // baseline suffers from.
      for (std::size_t q = 0; q < rs; ++q) {
        for (std::size_t j = 0; j < nc; ++j) {
          plan.bounds[t + q + 1][j] = upper(j, v);
        }
      }
      if (method == MergePartitionMethod::kSkewAware && rs == 1) {
        // Single pivot: nothing to split.
      }
      t += rs;
      continue;
    }

    // Duplicated pivot value v shared by rs consecutive parts: split the
    // exact run of v's. (DESIGN.md Section 4: we refine the paper's
    // [upper_bound(ppv), upper_bound(v)) range to the exact duplicate run
    // [lower_bound(v), upper_bound(v)) for order-correctness.)
    std::vector<std::size_t> lo(nc), cnt(nc);
    std::size_t total = 0;
    for (std::size_t j = 0; j < nc; ++j) {
      lo[j] = lower(j, v);
      cnt[j] = upper(j, v) - lo[j];
      total += cnt[j];
    }
    if (!stable) {
      // Fast version: each chunk splits its own duplicates evenly.
      for (std::size_t q = 1; q <= rs; ++q) {
        for (std::size_t j = 0; j < nc; ++j) {
          plan.bounds[t + q][j] = lo[j] + cnt[j] * q / rs;
        }
      }
    } else {
      // Stable version: the global run of v's, ordered chunk-major (the
      // stability order), is cut into rs contiguous groups of ~total/rs.
      const std::size_t sa = (total + rs - 1) / rs;
      std::vector<std::size_t> prefix(nc, 0);
      for (std::size_t j = 1; j < nc; ++j) {
        prefix[j] = prefix[j - 1] + cnt[j - 1];
      }
      for (std::size_t q = 1; q <= rs; ++q) {
        const std::size_t target = std::min(q * sa, total);
        for (std::size_t j = 0; j < nc; ++j) {
          const std::size_t taken =
              target <= prefix[j]
                  ? 0
                  : std::min(target - prefix[j], cnt[j]);
          plan.bounds[t + q][j] = lo[j] + taken;
        }
      }
    }
    t += rs;
  }
  // The q == rs boundary of the final run may have written bounds[parts];
  // restore the full-chunk terminator.
  for (std::size_t j = 0; j < nc; ++j) {
    plan.bounds[parts][j] = chunks[j].size();
  }
  return plan;
}

}  // namespace sdss
