// SIMD/branchless sortcore kernels behind the feature-detected dispatch
// shim (util/simd.hpp).
//
// Three kernel families, each with a portable scalar implementation that is
// always compiled plus per-ISA vector variants selected at runtime:
//
//  * **Histogramming** — the radix sort's digit-count sweeps. `hist_all`
//    counts every digit of every pass in one pass over the keys with
//    branchless independent-shift extraction (replacing the serial
//    `k >>= 8` dependency chain the radix loop used to carry); it is
//    deliberately scalar on every ISA — the measured note in
//    simd_kernels.cpp explains why the vector variants lost. `hist_pass`
//    counts one digit position (the parallel radix re-histogram before
//    every scatter); its AVX2 variant does the shift+mask extraction in
//    SIMD registers, the one histogram shape where vectors win.
//
//  * **Sorting network** — a branchless bitonic network for runs of at most
//    kSortNetworkMaxN records, the small-n base case under seq_sort /
//    local_sort / radix_sort. Data-independent compare-exchange schedule:
//    no branch mispredicts, and the AVX2 variants run 4 (u64) or 8 (u32)
//    exchanges per instruction pair. Inputs pad to the next power of two
//    with max-value sentinels in a local buffer. Only plain unsigned
//    integer keys are eligible (see `eligible` below), for which equal keys
//    mean identical records — so the unstable network trivially satisfies
//    the library's stability contracts.
//
//  * **Gallop scan** — the bounded "advance while key beats the runner-up"
//    scan inside the k-way merge's bulk-copy fast path. The vector variants
//    compare a register of keys against the broadcast limit and find the
//    first stop lane with a movemask, turning a serial dependent loop into
//    a data-parallel scan.
//
// Eligibility: the vector fast paths engage only for `uint32_t`/`uint64_t`
// elements under `IdentityKey`. Everything else (records, projections,
// other widths) takes the existing generic code — the shim never changes
// which algorithm runs, only how fast the inner loop executes, and the
// scalar build (-DSDSS_FORCE_SCALAR=ON) is differentially tested to produce
// bit-identical output.
//
// Every dispatch is counted once per invocation in kernel_stats
// (simd_*_calls) so telemetry and the bench ablation can attribute wins.
// The counts are ISA-independent by design: cutoffs below never consult
// the active ISA, so the counters stay deterministic and gate-able.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "sortcore/key.hpp"

namespace sdss {

namespace detail {

/// Largest run the branchless sorting network handles — the small-n base
/// case cutoff under seq_sort/local_sort/radix_sort.
inline constexpr std::size_t kSortNetworkMaxN = 64;

/// Below this, radix_sort_parallel falls back to the sequential kernel:
/// per-block histogram + prefix machinery costs more than it saves.
inline constexpr std::size_t kRadixSeqFallbackN = 4096;

/// Minimum records per parallel-radix stripe — keeps stripes large enough
/// that per-block histograms stay cache-friendly.
inline constexpr std::size_t kRadixMinBlockRecords = 1024;

/// Fewer stripes than this and the parallel scatter is pure overhead.
inline constexpr std::size_t kRadixMinParallelBlocks = 2;

}  // namespace detail

namespace simdk {

/// Element types with vector kernel variants.
template <typename T>
inline constexpr bool is_vector_key =
    std::is_same_v<T, std::uint32_t> || std::is_same_v<T, std::uint64_t>;

/// The vector fast paths apply only to plain unsigned integer elements
/// sorted by identity — exactly the case where equal keys are identical
/// records and stability is vacuous.
template <typename T, typename KeyFn>
inline constexpr bool eligible =
    std::is_same_v<KeyFn, IdentityKey> && is_vector_key<T>;

// --- histogramming ----------------------------------------------------------

/// All-pass digit histogram: h[pass * 256 + byte] += count for every of the
/// sizeof(key) byte positions. h must be zero-initialized by the caller.
void hist_all(const std::uint64_t* keys, std::size_t n, std::size_t* h);
void hist_all(const std::uint32_t* keys, std::size_t n, std::size_t* h);

/// Single-pass digit histogram for the digit at `shift`: h[digit] += count.
void hist_pass(const std::uint64_t* keys, std::size_t n, int shift,
               std::size_t* h);
void hist_pass(const std::uint32_t* keys, std::size_t n, int shift,
               std::size_t* h);

// --- sorting network --------------------------------------------------------

/// Sort v[0..n) ascending with a branchless bitonic network.
/// Precondition: n <= detail::kSortNetworkMaxN.
void sort_small(std::uint64_t* v, std::size_t n);
void sort_small(std::uint32_t* v, std::size_t n);

// --- gallop scan ------------------------------------------------------------

/// Length of the maximal prefix of p[0..n) that the galloping merge may
/// emit: elements with p[i] <= limit when `inclusive` (ties belong to the
/// winning run), p[i] < limit otherwise.
std::size_t gallop(const std::uint64_t* p, std::size_t n, std::uint64_t limit,
                   bool inclusive);
std::size_t gallop(const std::uint32_t* p, std::size_t n, std::uint32_t limit,
                   bool inclusive);

}  // namespace simdk

}  // namespace sdss
