// LSD radix sort for records with unsigned-integer keys.
//
// Radix sort is one of the classic non-sampling parallel sorts the paper
// contrasts with (Section 5, Thearling & Smith); it also serves as a fast
// stable sequential sort for integer-keyed records (e.g. cosmology cluster
// IDs). Stable by construction: each digit pass is a counting sort that
// preserves the order of equal digits.
//
// Three entry points, cheapest first:
//  * radix_sort(span data, span scratch) — the allocation-free core: caller
//    provides the O(n) scratch (normally from a ScratchArena), passes
//    ping-pong between data and scratch, and the final copy-back happens
//    only when an odd number of non-trivial passes ran;
//  * radix_sort(vector) — compatibility wrapper; borrows scratch from this
//    thread's arena instead of allocating;
//  * radix_sort_parallel(span data, span scratch, pool) — per-thread
//    histograms: the input splits into blocks, each pass computes per-block
//    digit counts in parallel, a (bucket-major, block-minor) prefix sum
//    assigns every block a private write cursor per bucket, and the scatter
//    runs in parallel with no atomics on the data path. Stable, because
//    bucket-major/block-minor order preserves block order within a digit.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "par/thread_pool.hpp"
#include "sortcore/arena.hpp"
#include "sortcore/kernel_stats.hpp"
#include "sortcore/key.hpp"
#include "sortcore/simd_kernels.hpp"

namespace sdss {

namespace detail {

inline constexpr int kRadixDigitBits = 8;
inline constexpr std::size_t kRadixBuckets = 1u << kRadixDigitBits;

/// Decide which digit passes can be skipped: a pass is trivial when every
/// key shares the same digit. `hist` is kPasses x kBuckets.
template <std::size_t kBuckets>
bool pass_is_trivial(const std::array<std::size_t, kBuckets>& h,
                     std::size_t n) {
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (h[b] == n) return true;
    if (h[b] != 0) return false;
  }
  return true;  // n == 0
}

}  // namespace detail

/// Allocation-free core: sort `data` by kf(record) using caller-provided
/// scratch of at least data.size() elements. The sorted result always ends
/// in `data`; the tail copy is skipped whenever an even number of
/// non-trivial passes ran (ping-pong parity).
template <typename T, typename KeyFn = IdentityKey>
void radix_sort(std::span<T> data, std::span<T> scratch, KeyFn kf = {}) {
  using Key = KeyType<KeyFn, T>;
  static_assert(std::is_unsigned_v<Key>,
                "radix_sort requires an unsigned integer key");
  constexpr int kDigitBits = detail::kRadixDigitBits;
  constexpr std::size_t kBuckets = detail::kRadixBuckets;
  constexpr int kPasses = static_cast<int>(sizeof(Key));

  const std::size_t n = data.size();
  if (n <= 1) return;
  if (scratch.size() < n) {
    throw std::invalid_argument("radix_sort: scratch smaller than data");
  }
  if constexpr (simdk::eligible<T, KeyFn>) {
    // Small-n base case: the branchless sorting network beats setting up
    // histograms for runs the network can swallow whole.
    if (n <= detail::kSortNetworkMaxN) {
      simdk::sort_small(data.data(), n);
      return;
    }
  }

  // One histogram per pass, computed in a single sweep.
  std::array<std::array<std::size_t, kBuckets>,
             static_cast<std::size_t>(kPasses)>
      hist{};
  if constexpr (simdk::eligible<T, KeyFn>) {
    simdk::hist_all(data.data(), n, hist.data()->data());
  } else {
    for (const T& v : data) {
      Key k = kf(v);
      for (int pass = 0; pass < kPasses; ++pass) {
        ++hist[static_cast<std::size_t>(pass)][k & (kBuckets - 1)];
        k >>= kDigitBits;
      }
    }
  }

  T* src = data.data();
  T* dst = scratch.data();
  bool swapped = false;
  std::uint64_t moved = 0;
  for (int pass = 0; pass < kPasses; ++pass) {
    auto& h = hist[static_cast<std::size_t>(pass)];
    if (detail::pass_is_trivial<kBuckets>(h, n)) continue;
    // Exclusive prefix sum -> bucket start offsets.
    std::size_t sum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::size_t c = h[b];
      h[b] = sum;
      sum += c;
    }
    const int shift = pass * kDigitBits;
    for (std::size_t i = 0; i < n; ++i) {
      const Key k = kf(src[i]);
      const auto digit =
          static_cast<std::size_t>((k >> shift) & (kBuckets - 1));
      dst[h[digit]++] = src[i];
    }
    std::swap(src, dst);
    swapped = !swapped;
    moved += n * sizeof(T);
  }
  if (swapped) {
    // Odd pass count: the result lives in `scratch`; copy back once.
    std::copy(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(n),
              data.begin());
    moved += n * sizeof(T);
  }
  detail::count_bytes_moved(moved);
}

/// Compatibility wrapper: sorts a vector in place, borrowing the O(n)
/// scratch from this thread's ScratchArena (no per-call heap allocation in
/// steady state).
template <typename T, typename KeyFn = IdentityKey>
void radix_sort(std::vector<T>& data, KeyFn kf = {}) {
  if (data.size() <= 1) return;
  ArenaScope scope(ScratchArena::for_thread());
  radix_sort(std::span<T>(data), scope.acquire<T>(data.size()), kf);
}

/// Parallel LSD radix with per-thread histograms. `data` splits into
/// `blocks` contiguous stripes; every pass histograms the stripes in
/// parallel, prefix-sums bucket-major/block-minor (so stability across
/// stripes is preserved), then scatters the stripes in parallel — each
/// (stripe, bucket) pair owns a disjoint output range, so the scatter needs
/// no synchronization. `blocks == 0` picks a block count from the pool
/// width. Falls back to the sequential kernel for small inputs.
template <typename T, typename KeyFn = IdentityKey>
void radix_sort_parallel(std::span<T> data, std::span<T> scratch,
                         par::ThreadPool& pool, KeyFn kf = {},
                         std::size_t blocks = 0) {
  using Key = KeyType<KeyFn, T>;
  static_assert(std::is_unsigned_v<Key>,
                "radix_sort requires an unsigned integer key");
  constexpr int kDigitBits = detail::kRadixDigitBits;
  constexpr std::size_t kBuckets = detail::kRadixBuckets;
  constexpr int kPasses = static_cast<int>(sizeof(Key));

  const std::size_t n = data.size();
  if (blocks == 0) blocks = pool.thread_count() + 1;
  if (n < detail::kRadixSeqFallbackN || blocks <= 1) {
    radix_sort(data, scratch, kf);
    return;
  }
  if (scratch.size() < n) {
    throw std::invalid_argument("radix_sort_parallel: scratch too small");
  }
  // Keep stripes cache-friendly: at least kRadixMinBlockRecords each.
  if (blocks > n / detail::kRadixMinBlockRecords) {
    blocks = n / detail::kRadixMinBlockRecords;
  }
  if (blocks < detail::kRadixMinParallelBlocks) {
    radix_sort(data, scratch, kf);
    return;
  }

  ArenaScope scope(ScratchArena::for_thread());
  // Global per-pass digit totals, computed in one parallel sweep. Totals
  // depend only on the key multiset (not on element placement), so they stay
  // valid across passes and decide skippability up front. The per-block
  // histograms, by contrast, describe the *current* layout and must be
  // recomputed before every scatter.
  auto totals = scope.acquire<std::size_t>(static_cast<std::size_t>(kPasses) *
                                           blocks * kBuckets);
  std::fill(totals.begin(), totals.end(), std::size_t{0});
  auto block_bounds = [n, blocks](std::size_t b) { return b * n / blocks; };

  pool.parallel_for(
      0, blocks,
      [&](std::size_t b) {
        std::size_t* h = totals.data() +
                         b * static_cast<std::size_t>(kPasses) * kBuckets;
        const std::size_t lo = block_bounds(b), hi = block_bounds(b + 1);
        if constexpr (simdk::eligible<T, KeyFn>) {
          // totals uses the same pass-major layout hist_all fills.
          simdk::hist_all(data.data() + lo, hi - lo, h);
        } else {
          for (std::size_t i = lo; i < hi; ++i) {
            Key k = kf(data[i]);
            for (int pass = 0; pass < kPasses; ++pass) {
              ++h[static_cast<std::size_t>(pass) * kBuckets +
                  (k & (kBuckets - 1))];
              k >>= kDigitBits;
            }
          }
        }
      },
      /*grain=*/1);
  std::array<bool, static_cast<std::size_t>(kPasses)> trivial{};
  for (int pass = 0; pass < kPasses; ++pass) {
    std::array<std::size_t, kBuckets> total{};
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t* h =
          totals.data() +
          (b * static_cast<std::size_t>(kPasses) +
           static_cast<std::size_t>(pass)) *
              kBuckets;
      for (std::size_t d = 0; d < kBuckets; ++d) total[d] += h[d];
    }
    trivial[static_cast<std::size_t>(pass)] =
        detail::pass_is_trivial<kBuckets>(total, n);
  }

  // hist[block*kBuckets + bucket] for the current pass; doubles as the
  // per-(block, bucket) write cursors after the prefix sum.
  auto hist = scope.acquire<std::size_t>(blocks * kBuckets);
  T* src = data.data();
  T* dst = scratch.data();
  bool swapped = false;
  std::uint64_t moved = 0;
  for (int pass = 0; pass < kPasses; ++pass) {
    if (trivial[static_cast<std::size_t>(pass)]) continue;
    const int shift = pass * kDigitBits;
    std::fill(hist.begin(), hist.end(), std::size_t{0});
    pool.parallel_for(
        0, blocks,
        [&](std::size_t b) {
          std::size_t* h = hist.data() + b * kBuckets;
          const std::size_t lo = block_bounds(b), hi = block_bounds(b + 1);
          if constexpr (simdk::eligible<T, KeyFn>) {
            simdk::hist_pass(src + lo, hi - lo, shift, h);
          } else {
            for (std::size_t i = lo; i < hi; ++i) {
              const Key k = kf(src[i]);
              ++h[(k >> shift) & (kBuckets - 1)];
            }
          }
        },
        /*grain=*/1);
    // Bucket-major, block-minor exclusive prefix sum: hist[b][d] becomes
    // the offset where block b writes its first record with digit d.
    std::size_t sum = 0;
    for (std::size_t d = 0; d < kBuckets; ++d) {
      for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t c = hist[b * kBuckets + d];
        hist[b * kBuckets + d] = sum;
        sum += c;
      }
    }
    pool.parallel_for(
        0, blocks,
        [&](std::size_t b) {
          std::size_t* cur = hist.data() + b * kBuckets;
          const std::size_t lo = block_bounds(b), hi = block_bounds(b + 1);
          for (std::size_t i = lo; i < hi; ++i) {
            const Key k = kf(src[i]);
            const auto digit =
                static_cast<std::size_t>((k >> shift) & (kBuckets - 1));
            dst[cur[digit]++] = src[i];
          }
        },
        /*grain=*/1);
    std::swap(src, dst);
    swapped = !swapped;
    moved += n * sizeof(T);
  }
  if (swapped) {
    pool.parallel_for_ranges(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(lo),
                    scratch.begin() + static_cast<std::ptrdiff_t>(hi),
                    data.begin() + static_cast<std::ptrdiff_t>(lo));
        },
        /*grain=*/(n + blocks - 1) / blocks);
    moved += n * sizeof(T);
  }
  detail::count_bytes_moved(moved);
}

}  // namespace sdss
