// LSD radix sort for records with unsigned-integer keys.
//
// Radix sort is one of the classic non-sampling parallel sorts the paper
// contrasts with (Section 5, Thearling & Smith); it also serves as a fast
// stable sequential sort for integer-keyed records (e.g. cosmology cluster
// IDs). Stable by construction: each digit pass is a counting sort that
// preserves the order of equal digits.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "sortcore/key.hpp"

namespace sdss {

/// Sort `data` by kf(record), which must yield an unsigned integer type.
/// 8-bit digits, least significant first; passes covering only zero digits
/// across the whole input are skipped.
template <typename T, typename KeyFn = IdentityKey>
void radix_sort(std::vector<T>& data, KeyFn kf = {}) {
  using Key = KeyType<KeyFn, T>;
  static_assert(std::is_unsigned_v<Key>,
                "radix_sort requires an unsigned integer key");
  constexpr int kDigitBits = 8;
  constexpr std::size_t kBuckets = 1u << kDigitBits;
  constexpr int kPasses = static_cast<int>(sizeof(Key));

  const std::size_t n = data.size();
  if (n <= 1) return;

  // One histogram per pass, computed in a single sweep.
  std::vector<std::array<std::size_t, kBuckets>> hist(
      static_cast<std::size_t>(kPasses));
  for (auto& h : hist) h.fill(0);
  for (const T& v : data) {
    Key k = kf(v);
    for (int pass = 0; pass < kPasses; ++pass) {
      ++hist[static_cast<std::size_t>(pass)][k & (kBuckets - 1)];
      k >>= kDigitBits;
    }
  }

  std::vector<T> scratch(n);
  T* src = data.data();
  T* dst = scratch.data();
  bool swapped = false;
  for (int pass = 0; pass < kPasses; ++pass) {
    auto& h = hist[static_cast<std::size_t>(pass)];
    // Skip passes where every key has the same digit.
    bool trivial = false;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (h[b] == n) {
        trivial = true;
        break;
      }
      if (h[b] != 0) break;
    }
    if (trivial) continue;
    // Exclusive prefix sum -> bucket start offsets.
    std::size_t sum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::size_t c = h[b];
      h[b] = sum;
      sum += c;
    }
    const int shift = pass * kDigitBits;
    for (std::size_t i = 0; i < n; ++i) {
      const Key k = kf(src[i]);
      const auto digit =
          static_cast<std::size_t>((k >> shift) & (kBuckets - 1));
      dst[h[digit]++] = src[i];
    }
    std::swap(src, dst);
    swapped = !swapped;
  }
  if (swapped) {
    // Result currently lives in `scratch`.
    std::copy(scratch.begin(), scratch.end(), data.begin());
  }
}

}  // namespace sdss
