// Spill-to-disk out-of-core machinery: budgeted run files + external merge.
//
// When a receive-side exchange would exceed `Config::mem_limit_records`, the
// spill policy (core/config.hpp MemoryPolicy::kSpill) drains the incoming
// volume into sorted *runs* on disk instead of throwing SimOomError, then
// produces the final ordering with an external k-way merge whose resident
// working set is bounded by the same budget.
//
// On-disk format: a run is a sequence of frames, each a fixed-layout header
// (magic, sequence number, payload size, FNV-1a checksum) followed by the
// payload. Frames are the unit of I/O, of checksum verification, and of
// resident memory during the merge: a reload never needs more than
// `frame_records` records of buffer per open run. Torn writes, truncated
// files and bit rot all surface as SpillIoError at reload time, never as
// silently wrong output.
//
// The external merge extends the in-memory loser tree (kway_merge.hpp):
// each run contributes its current frame as the tree's backing span, and
// when a frame drains the cursor loads the next one in place and re-arms
// the run (LoserTree::refill_run). When the budget caps the fan-in below
// the run count, intermediate passes merge groups of runs back into new
// spilled runs, in run-id order, so the stability rule — ties go to the
// lower run id — survives multi-pass merging.
//
// Fault injection and op accounting go through the abstract SpillChaosHook
// (spill_hook.hpp); this file has no dependency on the simulator.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "sortcore/arena.hpp"
#include "sortcore/key.hpp"
#include "sortcore/kway_merge.hpp"
#include "sortcore/spill_hook.hpp"
#include "util/error.hpp"

namespace sdss {

struct SpillConfig {
  /// Directory for run files; "" uses the system temp directory. Files are
  /// uniquely named per process/pool/run and removed by ~SpillPool.
  std::string dir;
  /// Records per frame: the checksum, reload, and staging granularity.
  std::size_t frame_records = 4096;
  /// Owning rank, for SpillIoError attribution; -1 outside a cluster run.
  int rank = -1;
};

/// Counters of one pool's lifetime, reported in telemetry's `spill` object.
/// All are deterministic for a fixed workload/seed/budget, so benches gate
/// them exactly against checked-in baselines.
struct SpillStats {
  std::uint64_t runs_written = 0;
  std::uint64_t frames_written = 0;
  std::uint64_t bytes_spilled = 0;    ///< payload bytes written
  std::uint64_t bytes_reloaded = 0;   ///< payload bytes read back
  std::uint64_t merge_passes = 0;     ///< external merge passes (>= 1)
  std::uint64_t peak_resident_records = 0;  ///< max staged records at once

  SpillStats& operator+=(const SpillStats& o) {
    runs_written += o.runs_written;
    frames_written += o.frames_written;
    bytes_spilled += o.bytes_spilled;
    bytes_reloaded += o.bytes_reloaded;
    merge_passes += o.merge_passes;
    peak_resident_records =
        std::max(peak_resident_records, o.peak_resident_records);
    return *this;
  }
};

/// Owns one rank's run files for the duration of a spill episode. All byte
/// I/O funnels through append_frame/read_frame, which are the chaos-visible
/// spill ops. Not thread-safe: one pool belongs to one rank fiber.
class SpillPool {
 public:
  explicit SpillPool(SpillConfig cfg, SpillChaosHook* hook = nullptr);
  ~SpillPool();
  SpillPool(const SpillPool&) = delete;
  SpillPool& operator=(const SpillPool&) = delete;

  const SpillConfig& config() const { return cfg_; }
  const SpillStats& stats() const { return stats_; }
  std::size_t num_runs() const { return runs_.size(); }

  /// Open a new run file and return its id. Create runs in the order the
  /// stability rule requires (e.g. source-rank order): the external merge
  /// awards ties to the lower run id.
  std::size_t begin_run();
  /// Append one framed, checksummed write (one spill op). `bytes` must not
  /// exceed frame_records * record size for the type being staged — the
  /// reader's buffer capacity is the frame size.
  void append_frame(std::size_t run, const void* p, std::size_t bytes);
  /// Seal the run: flush it and freeze its frame count.
  void end_run(std::size_t run);

  /// Rewind a sealed run for reading from its first frame.
  void open_run(std::size_t run);
  /// Load the next frame's payload into `dst` (one spill op); returns the
  /// payload size, or 0 when the run is exhausted. A short read, a damaged
  /// header, or a checksum mismatch throws SpillIoError.
  std::size_t read_frame(std::size_t run, void* dst, std::size_t capacity);
  /// Drop a run that has been fully merged away: close and unlink its file.
  void release_run(std::size_t run);

  /// Resident-record accounting: the exchange and the merge report their
  /// bounded staging buffers here so `peak_resident_records` is an auditable
  /// measure of the out-of-core promise.
  void resident_acquire(std::size_t records);
  void resident_release(std::size_t records);
  std::size_t resident_records() const { return resident_; }
  void bump_merge_pass() { ++stats_.merge_passes; }

 private:
  struct Run {
    std::string path;
    std::FILE* file = nullptr;
    std::uint64_t frames = 0;       ///< frames written (frozen by end_run)
    std::uint64_t frames_read = 0;  ///< cursor position, frames
    bool sealed = false;
    bool released = false;
  };

  std::uint64_t next_op(const char* op);
  Run& run_for_io(std::size_t run, const char* op);

  SpillConfig cfg_;
  SpillChaosHook* hook_;
  SpillStats stats_;
  std::vector<Run> runs_;
  std::size_t resident_ = 0;
  std::uint64_t local_ops_ = 0;  ///< op ordinals when no hook is attached
  std::uint64_t pool_id_ = 0;    ///< process-unique, for run file naming
};

/// Spill one already-sorted run, framed at frame_records granularity.
template <typename T>
std::size_t spill_run(SpillPool& pool, std::span<const T> records) {
  const std::size_t id = pool.begin_run();
  const std::size_t frame = pool.config().frame_records;
  for (std::size_t i = 0; i < records.size(); i += frame) {
    const std::size_t n = std::min(frame, records.size() - i);
    pool.append_frame(id, records.data() + i, n * sizeof(T));
  }
  pool.end_run(id);
  return id;
}

/// Frame-at-a-time typed cursor: holds exactly one frame of T resident.
template <typename T>
class SpillRunCursor {
 public:
  SpillRunCursor(SpillPool& pool, std::size_t run) : pool_(&pool), run_(run) {
    pool_->open_run(run_);
    buf_.resize(pool_->config().frame_records);
  }

  /// Load the next frame; an empty span means the run is exhausted.
  std::span<const T> next() {
    const std::size_t bytes =
        pool_->read_frame(run_, buf_.data(), buf_.size() * sizeof(T));
    return {buf_.data(), bytes / sizeof(T)};
  }

 private:
  SpillPool* pool_;
  std::size_t run_;
  std::vector<T> buf_;
};

namespace spill_detail {

/// Merge one group of spilled runs through the loser tree, feeding `emit`
/// sorted chunks of at most one frame. Source runs are released afterwards.
template <typename T, typename KeyFn, typename Emit>
void merge_group(SpillPool& pool, std::span<const std::size_t> group, KeyFn kf,
                 Emit&& emit) {
  const std::size_t frame = pool.config().frame_records;
  // Materialize cursors and their first frames; drop runs that are empty on
  // disk but keep relative order (the stability contract).
  std::vector<SpillRunCursor<T>> cursors;
  std::vector<std::span<const T>> frames;
  cursors.reserve(group.size());
  frames.reserve(group.size());
  for (const std::size_t id : group) {
    SpillRunCursor<T> cur(pool, id);
    std::span<const T> first = cur.next();
    if (first.empty()) continue;
    cursors.push_back(std::move(cur));
    frames.push_back(first);
  }
  // `frames` backs the tree and is swapped in place on refill. The spans
  // point into each cursor's heap buffer, which survives the push_back move
  // (vector moves steal the allocation), so they stay valid.
  const std::size_t live = cursors.size();
  pool.resident_acquire(live * frame + frame);
  {
    std::vector<T> stage;
    stage.reserve(frame);
    ArenaScope scope(ScratchArena::for_thread());
    LoserTree<T, KeyFn> tree({frames.data(), frames.size()}, kf, scope);
    while (!tree.empty()) {
      const std::size_t r = tree.min_run();
      stage.push_back(tree.pop());
      if (tree.run_exhausted(r)) {
        // Refill before the next pop: a tie spanning r's frame boundary
        // must keep winning for r, or cross-run stability breaks.
        std::span<const T> nxt = cursors[r].next();
        if (!nxt.empty()) {
          frames[r] = nxt;
          tree.refill_run(r);
        }
      }
      if (stage.size() == frame) {
        emit(std::span<const T>(stage.data(), stage.size()));
        stage.clear();
      }
    }
    if (!stage.empty()) emit(std::span<const T>(stage.data(), stage.size()));
  }
  pool.resident_release(live * frame + frame);
  for (const std::size_t id : group) pool.release_run(id);
}

}  // namespace spill_detail

/// External k-way merge of spilled runs under a resident-record budget.
/// Fan-in per pass is bounded so that (open cursors + one output staging
/// frame) fit in `budget_records`; when there are more runs than that,
/// intermediate passes merge run groups back into new spilled runs. The
/// result vector is the job's output and is not counted against the budget
/// (the budget bounds *working* memory, matching plan_exchange's model of
/// the strict path). budget_records == 0 means unlimited (single pass).
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<T> external_kway_merge(SpillPool& pool,
                                   std::vector<std::size_t> runs,
                                   std::size_t budget_records, KeyFn kf = {}) {
  if (runs.empty()) return {};
  const std::size_t frame = pool.config().frame_records;
  std::size_t fan_in = runs.size();
  if (budget_records != 0) {
    fan_in = budget_records > 3 * frame ? budget_records / frame - 1 : 2;
  }
  while (runs.size() > fan_in) {
    pool.bump_merge_pass();
    std::vector<std::size_t> next;
    next.reserve((runs.size() + fan_in - 1) / fan_in);
    for (std::size_t i = 0; i < runs.size(); i += fan_in) {
      const std::size_t n = std::min(fan_in, runs.size() - i);
      const std::size_t out = pool.begin_run();
      spill_detail::merge_group<T>(
          pool, std::span<const std::size_t>(runs.data() + i, n), kf,
          [&](std::span<const T> chunk) {
            pool.append_frame(out, chunk.data(), chunk.size() * sizeof(T));
          });
      pool.end_run(out);
      next.push_back(out);
    }
    runs = std::move(next);
  }
  pool.bump_merge_pass();
  std::vector<T> out;
  spill_detail::merge_group<T>(
      pool, std::span<const std::size_t>(runs.data(), runs.size()), kf,
      [&](std::span<const T> chunk) {
        out.insert(out.end(), chunk.begin(), chunk.end());
      });
  return out;
}

}  // namespace sdss
