#include "sortcore/kernel_stats.hpp"

namespace sdss {

KernelCounters& kernel_counters() {
  static KernelCounters counters;
  return counters;
}

KernelSnapshot snapshot_kernel_counters() {
  const KernelCounters& c = kernel_counters();
  KernelSnapshot s;
  s.bytes_moved = c.bytes_moved.load(std::memory_order_relaxed);
  s.scratch_bytes = c.scratch_bytes.load(std::memory_order_relaxed);
  s.arena_hwm = c.arena_hwm.load(std::memory_order_relaxed);
  s.heap_allocs = c.heap_allocs.load(std::memory_order_relaxed);
  s.merge_gallop_bytes = c.merge_gallop_bytes.load(std::memory_order_relaxed);
  s.simd_hist_calls = c.simd_hist_calls.load(std::memory_order_relaxed);
  s.simd_sortnet_calls = c.simd_sortnet_calls.load(std::memory_order_relaxed);
  s.simd_gallop_calls = c.simd_gallop_calls.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sdss
