#include "sortcore/spill.hpp"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "obs/metrics.hpp"
#include "trace/recorder.hpp"

namespace sdss {

namespace {

// Interned at static init; every emit below is gated on obs::active().
const obs::MetricId kMSpillWriteNs = obs::register_metric(
    "spill.write_ns", obs::MetricKind::kHistogram, obs::MetricUnit::kNanos);
const obs::MetricId kMSpillReadNs = obs::register_metric(
    "spill.read_ns", obs::MetricKind::kHistogram, obs::MetricUnit::kNanos);
const obs::MetricId kMSpillFrameBytes = obs::register_metric(
    "spill.frame_bytes", obs::MetricKind::kHistogram, obs::MetricUnit::kBytes);
const obs::MetricId kMSpillResident = obs::register_metric(
    "spill.resident_records", obs::MetricKind::kGauge,
    obs::MetricUnit::kRecords);
const obs::MetricId kMSpillResidentPeak = obs::register_metric(
    "spill.resident_peak_records", obs::MetricKind::kGauge,
    obs::MetricUnit::kRecords);

using ObsClock = std::chrono::steady_clock;

std::uint64_t obs_elapsed_ns(ObsClock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(ObsClock::now() -
                                                           t0)
          .count());
}

// Frame layout on disk: header then payload. The header is written and read
// with memcpy into this exact struct; all fields are fixed-width and the
// files never leave the machine that wrote them, so no endianness handling.
struct FrameHeader {
  std::uint32_t magic = 0;
  std::uint32_t seq = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};
constexpr std::uint32_t kFrameMagic = 0x53445346;  // "SDSF"

std::uint64_t fnv1a(const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Unique per process + pool instance + run: several rank fibers of one
// simulated cluster share the process and the directory.
std::atomic<std::uint64_t> g_pool_seq{0};

std::string make_run_path(const std::string& dir, int rank,
                          std::uint64_t pool_id, std::size_t id) {
  namespace fs = std::filesystem;
  fs::path base = dir.empty() ? fs::temp_directory_path() : fs::path(dir);
  std::ostringstream name;
  name << "sdss-spill-" << static_cast<unsigned long>(::getpid()) << "-"
       << pool_id << "-r" << rank << "-" << id << ".run";
  return (base / name.str()).string();
}

}  // namespace

SpillPool::SpillPool(SpillConfig cfg, SpillChaosHook* hook)
    : cfg_(std::move(cfg)), hook_(hook), pool_id_(g_pool_seq.fetch_add(1)) {
  if (cfg_.frame_records == 0) cfg_.frame_records = 4096;
}

SpillPool::~SpillPool() {
  for (Run& r : runs_) {
    if (r.released) continue;
    if (r.file != nullptr) std::fclose(r.file);
    std::remove(r.path.c_str());  // best-effort cleanup
  }
}

std::uint64_t SpillPool::next_op(const char* op) {
  return hook_ != nullptr ? hook_->before_op(op) : local_ops_++;
}

SpillPool::Run& SpillPool::run_for_io(std::size_t run, const char* op) {
  if (run >= runs_.size() || runs_[run].released) {
    throw SpillIoError(cfg_.rank, local_ops_, op,
                       "run id " + std::to_string(run) + " is not open");
  }
  return runs_[run];
}

std::size_t SpillPool::begin_run() {
  Run r;
  r.path = make_run_path(cfg_.dir, cfg_.rank, pool_id_, runs_.size());
  r.file = std::fopen(r.path.c_str(), "wb+");
  if (r.file == nullptr) {
    throw SpillIoError(cfg_.rank, local_ops_, "spill-write",
                       "cannot create run file " + r.path + ": " +
                           std::strerror(errno));
  }
  ++stats_.runs_written;
  runs_.push_back(std::move(r));
  return runs_.size() - 1;
}

void SpillPool::append_frame(std::size_t run, const void* p,
                             std::size_t bytes) {
  // The hook call is the chaos injection point: it may sleep (slow disk) or
  // throw SpillIoError (injected write failure) before any byte is written.
  const std::uint64_t k = next_op("spill-write");
  Run& r = run_for_io(run, "spill-write");
  if (r.sealed) {
    throw SpillIoError(cfg_.rank, k, "spill-write", "run is sealed");
  }
  const bool traced = trace::active();
  const std::uint64_t begin_ns = traced ? trace::now_ns() : 0;
  const bool metered = obs::active();
  const ObsClock::time_point m_t0 =
      metered ? ObsClock::now() : ObsClock::time_point{};

  FrameHeader h;
  h.magic = kFrameMagic;
  h.seq = static_cast<std::uint32_t>(r.frames);
  h.payload_bytes = bytes;
  h.checksum = fnv1a(p, bytes);

  // Injected corruption: damage the payload after the checksum was taken,
  // so the reload's verification is what catches it.
  std::vector<unsigned char> corrupted;
  const void* payload = p;
  if (hook_ != nullptr && bytes > 0 && hook_->corrupt_write(k)) {
    corrupted.assign(static_cast<const unsigned char*>(p),
                     static_cast<const unsigned char*>(p) + bytes);
    corrupted[0] ^= 0xff;
    payload = corrupted.data();
  }

  if (std::fwrite(&h, sizeof(h), 1, r.file) != 1 ||
      (bytes > 0 && std::fwrite(payload, 1, bytes, r.file) != bytes)) {
    throw SpillIoError(cfg_.rank, k, "spill-write",
                       "short write to " + r.path);
  }
  ++r.frames;
  ++stats_.frames_written;
  stats_.bytes_spilled += bytes;
  if (traced) {
    trace::complete(trace::EventCat::kSpill, "spill-write", begin_ns, bytes);
  }
  if (metered) {
    obs::hist_record(kMSpillWriteNs, obs_elapsed_ns(m_t0));
    obs::hist_record(kMSpillFrameBytes, bytes);
  }
}

void SpillPool::end_run(std::size_t run) {
  Run& r = run_for_io(run, "spill-write");
  if (std::fflush(r.file) != 0) {
    throw SpillIoError(cfg_.rank, local_ops_, "spill-write",
                       "flush failed for " + r.path);
  }
  r.sealed = true;
}

void SpillPool::open_run(std::size_t run) {
  Run& r = run_for_io(run, "spill-read");
  if (!r.sealed) {
    throw SpillIoError(cfg_.rank, local_ops_, "spill-read",
                       "run is not sealed");
  }
  std::rewind(r.file);
  r.frames_read = 0;
}

std::size_t SpillPool::read_frame(std::size_t run, void* dst,
                                  std::size_t capacity) {
  Run& r = run_for_io(run, "spill-read");
  if (r.frames_read >= r.frames) return 0;  // exhausted: not an I/O op
  const std::uint64_t k = next_op("spill-read");
  const bool traced = trace::active();
  const std::uint64_t begin_ns = traced ? trace::now_ns() : 0;
  const bool metered = obs::active();
  const ObsClock::time_point m_t0 =
      metered ? ObsClock::now() : ObsClock::time_point{};

  FrameHeader h;
  if (std::fread(&h, sizeof(h), 1, r.file) != 1) {
    throw SpillIoError(cfg_.rank, k, "spill-read",
                       "short header read from " + r.path);
  }
  if (h.magic != kFrameMagic ||
      h.seq != static_cast<std::uint32_t>(r.frames_read)) {
    throw SpillIoError(cfg_.rank, k, "spill-read",
                       "damaged frame header in " + r.path);
  }
  if (h.payload_bytes > capacity) {
    throw SpillIoError(cfg_.rank, k, "spill-read",
                       "frame larger than reader buffer in " + r.path);
  }
  const std::size_t bytes = static_cast<std::size_t>(h.payload_bytes);
  if (bytes > 0 && std::fread(dst, 1, bytes, r.file) != bytes) {
    throw SpillIoError(cfg_.rank, k, "spill-read",
                       "short payload read from " + r.path);
  }
  const std::uint64_t got = fnv1a(dst, bytes);
  if (got != h.checksum) {
    std::ostringstream os;
    os << "frame checksum mismatch in " << r.path << " (frame "
       << r.frames_read << ": stored " << h.checksum << ", computed " << got
       << ")";
    throw SpillIoError(cfg_.rank, k, "spill-read", os.str());
  }
  ++r.frames_read;
  stats_.bytes_reloaded += bytes;
  if (traced) {
    trace::complete(trace::EventCat::kSpill, "spill-read", begin_ns, bytes);
  }
  if (metered) obs::hist_record(kMSpillReadNs, obs_elapsed_ns(m_t0));
  return bytes;
}

void SpillPool::release_run(std::size_t run) {
  if (run >= runs_.size() || runs_[run].released) return;
  Run& r = runs_[run];
  if (r.file != nullptr) std::fclose(r.file);
  std::remove(r.path.c_str());
  r.file = nullptr;
  r.released = true;
}

void SpillPool::resident_acquire(std::size_t records) {
  resident_ += records;
  stats_.peak_resident_records =
      std::max<std::uint64_t>(stats_.peak_resident_records, resident_);
  if (obs::active()) {
    // Current residency is a live gauge (the sampler fiber watches it);
    // the peak is a high-water gauge aggregated as max over ranks.
    obs::gauge_set(kMSpillResident, resident_);
    obs::gauge_max(kMSpillResidentPeak, resident_);
  }
}

void SpillPool::resident_release(std::size_t records) {
  resident_ = records > resident_ ? 0 : resident_ - records;
  if (obs::active()) obs::gauge_set(kMSpillResident, resident_);
}

}  // namespace sdss
