// ScratchArena: reusable bump-allocated scratch for the sort/merge kernels.
//
// Every local kernel needs transient O(n) workspace — radix ping-pong
// buffers, run-merge output, loser-tree state, merge-part piece tables. The
// pre-arena code allocated a fresh std::vector for each, so a steady-state
// sort→merge pipeline paid one malloc/free pair (and the page faults of a
// cold buffer) per chunk per phase. A ScratchArena amortizes all of that:
// one grow-only buffer per thread, bump-allocated with stack discipline.
//
// Ownership model (DESIGN.md "Kernel memory discipline"):
//  * one arena per execution context — simulated ranks are fibers, pool
//    workers are threads, and for_thread() resolves through fiber-local
//    storage (util/fls.hpp) so each gets its own arena and a rank keeps its
//    arena when the scheduler migrates it across workers;
//  * callers never reset an arena they did not create. Library code brackets
//    its usage with an ArenaScope, which rewinds to the entry position on
//    destruction, so nested kernels (sort_chunk → run_aware_sort →
//    kway_merge) stack their workspace naturally;
//  * growth never invalidates live spans: the arena is a chain of blocks,
//    and running out of the current block allocates (or reuses) a further
//    block instead of reallocating. Fully-rewound arenas coalesce the chain
//    into one block, so the steady state is a single allocation-free buffer.
//
// Only trivially copyable, trivially destructible element types are
// eligible — the arena never runs constructors or destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "sortcore/kernel_stats.hpp"
#include "util/fls.hpp"

namespace sdss {

namespace detail {
/// Arena scratch high-water, aggregated max-over-ranks in the metrics
/// snapshot (obs/metrics.hpp). Interned once at static init.
inline const obs::MetricId kArenaHwmMetric = obs::register_metric(
    "arena.bytes_hwm", obs::MetricKind::kGauge, obs::MetricUnit::kBytes);
}  // namespace detail

class ScratchArena {
 public:
  /// Position token for stack-discipline rewinds (see ArenaScope).
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// The calling context's arena: per rank fiber under the sim scheduler,
  /// per OS thread otherwise. Lives until the fiber is destroyed (or the
  /// thread exits). FLS-backed rather than thread_local so a rank's live
  /// spans survive suspension and resumption on a different worker.
  static ScratchArena& for_thread() {
    static const int slot = fls::alloc_slot();
    auto* p = static_cast<ScratchArena*>(fls::get(slot));
    if (p == nullptr) {
      p = new ScratchArena();
      fls::set(slot, p, [](void* q) { delete static_cast<ScratchArena*>(q); });
    }
    return *p;
  }

  Mark mark() const { return {cur_, off_}; }

  /// Rewind to a previously taken mark. Blocks past the mark stay cached
  /// for reuse; a rewind to the very start additionally coalesces a
  /// fragmented chain into one right-sized block (steady state: one block,
  /// zero further allocations).
  void rewind(Mark m) {
    cur_ = m.block;
    off_ = m.offset;
    live_ = live_at(m);
    if (cur_ == 0 && off_ == 0 && blocks_.size() > 1) coalesce();
  }

  /// Borrow `n` elements of U. The returned span is valid until the arena
  /// is rewound past the current position. Never value-initializes.
  template <typename U>
  std::span<U> acquire(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<U> &&
                      std::is_trivially_destructible_v<U>,
                  "ScratchArena holds raw bytes: U must be trivial");
    if (n == 0) return {};
    const std::size_t bytes = n * sizeof(U);
    void* p = bump(bytes, alignof(U));
    kernel_counters().scratch_bytes.fetch_add(bytes,
                                              std::memory_order_relaxed);
    publish_hwm();
    return {static_cast<U*>(p), n};
  }

  /// Total bytes currently live (for tests and telemetry).
  std::size_t used() const { return live_; }
  /// Total bytes the block chain can serve without allocating.
  std::size_t capacity() const {
    std::size_t c = 0;
    for (const Block& b : blocks_) c += b.size;
    return c;
  }
  /// Largest `used()` this arena has seen.
  std::size_t high_water() const { return high_water_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
  };

  static constexpr std::size_t kMinBlock = 4096;

  static std::size_t align_up(std::size_t v, std::size_t a) {
    return (v + a - 1) & ~(a - 1);
  }

  std::size_t live_at(Mark m) const {
    std::size_t bytes = m.offset;
    for (std::size_t b = 0; b < m.block; ++b) bytes += blocks_[b].size;
    return bytes;
  }

  void* bump(std::size_t bytes, std::size_t align) {
    if (!blocks_.empty()) {
      const std::size_t at = align_up(off_, align);
      if (at + bytes <= blocks_[cur_].size) {
        off_ = at + bytes;
        live_ = live_at({cur_, off_});
        note_use();
        return blocks_[cur_].mem.get() + at;
      }
      // Current block exhausted: move to a cached further block if one can
      // hold the request. Blocks past the current position hold no live
      // data, so dropping too-small ones is safe.
      while (cur_ + 1 < blocks_.size() && blocks_[cur_ + 1].size < bytes) {
        blocks_.erase(blocks_.begin() +
                      static_cast<std::ptrdiff_t>(cur_ + 1));
      }
      if (cur_ + 1 < blocks_.size()) {
        ++cur_;
        off_ = bytes;
        live_ = live_at({cur_, off_});
        note_use();
        return blocks_[cur_].mem.get();
      }
    }
    // Grow: at least double the chain so amortized growth is O(log) blocks.
    std::size_t size = capacity() * 2;
    if (size < bytes) size = bytes;
    if (size < kMinBlock) size = kMinBlock;
    Block b;
    b.mem = std::make_unique_for_overwrite<std::byte[]>(size);
    b.size = size;
    detail::count_heap_alloc();
    blocks_.push_back(std::move(b));
    cur_ = blocks_.size() - 1;
    off_ = bytes;
    live_ = live_at({cur_, off_});
    note_use();
    return blocks_[cur_].mem.get();
  }

  /// Replace a fully-rewound multi-block chain with one block covering the
  /// whole capacity, so future acquisitions are contiguous and alloc-free.
  void coalesce() {
    const std::size_t total = capacity();
    blocks_.clear();
    Block b;
    b.mem = std::make_unique_for_overwrite<std::byte[]>(total);
    b.size = total;
    detail::count_heap_alloc();
    blocks_.push_back(std::move(b));
    cur_ = 0;
    off_ = 0;
    live_ = 0;
  }

  void note_use() {
    if (live_ > high_water_) high_water_ = live_;
  }

  void publish_hwm() {
    auto& global = kernel_counters().arena_hwm;
    std::uint64_t seen = global.load(std::memory_order_relaxed);
    while (seen < high_water_ &&
           !global.compare_exchange_weak(seen, high_water_,
                                         std::memory_order_relaxed)) {
    }
    if (obs::active()) obs::gauge_max(detail::kArenaHwmMetric, high_water_);
  }

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;   ///< index of the block being bumped
  std::size_t off_ = 0;   ///< bump offset within blocks_[cur_]
  std::size_t live_ = 0;  ///< bytes live across the whole chain
  std::size_t high_water_ = 0;
};

/// RAII bracket: everything acquired after construction is released (the
/// arena position rewound) on destruction. The standard way for kernels to
/// borrow workspace — nests safely to any depth on one thread.
class ArenaScope {
 public:
  explicit ArenaScope(ScratchArena& arena)
      : arena_(arena), mark_(arena.mark()) {}
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope() { arena_.rewind(mark_); }

  template <typename U>
  std::span<U> acquire(std::size_t n) {
    return arena_.acquire<U>(n);
  }

  ScratchArena& arena() { return arena_; }

 private:
  ScratchArena& arena_;
  ScratchArena::Mark mark_;
};

}  // namespace sdss
