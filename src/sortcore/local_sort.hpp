// SdssLocalSort: shared-memory parallel sorting with skew-aware merging
// (paper Section 2.2).
//
// The strategy is the classic chunk/sort/merge: split the array into c
// chunks, sort each on its own core (std::sort or std::stable_sort per the
// stable flag), then merge the c sorted chunks in parallel. The merge uses
// the skew-aware partition of merge_partition.hpp, so heavily duplicated
// keys still yield c near-equal merge tasks — "SdssLocalSort is a shared
// memory version of SDS-Sort without network connection".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "par/thread_pool.hpp"
#include "sortcore/algo.hpp"
#include "sortcore/key.hpp"
#include "sortcore/kway_merge.hpp"
#include "sortcore/merge_partition.hpp"
#include "sortcore/radix.hpp"
#include "sortcore/runs.hpp"
#include "sortcore/seq_sort.hpp"

namespace sdss {

struct LocalSortConfig {
  int threads = 1;   ///< c: chunk count == worker count (paper's cores/node)
  bool stable = false;
  MergePartitionMethod method = MergePartitionMethod::kSkewAware;
  LocalSortAlgo algo = LocalSortAlgo::kComparison;
  std::size_t seq_threshold = 4096;  ///< below this, sort sequentially
  /// Recognize partially ordered chunks (paper Sections 1/2.7): when a
  /// chunk decomposes into at most this many natural runs, merge the runs
  /// (O(n log r), O(n) when already sorted) instead of a full sort. 0
  /// disables the scan.
  std::size_t exploit_runs_below = 64;
};

namespace detail {

/// Sort one contiguous chunk with the selected kernel.
template <typename T, typename KeyFn>
void sort_chunk(std::span<T> chunk, const LocalSortConfig& cfg, KeyFn kf) {
  using K = KeyType<KeyFn, T>;
  if constexpr (!std::is_unsigned_v<K>) {
    if (cfg.algo == LocalSortAlgo::kRadix) {
      throw std::invalid_argument(
          "LocalSortAlgo::kRadix requires an unsigned integer key");
    }
  }
  // Partially ordered input: a cheap O(n) scan decides whether run merging
  // beats re-sorting from scratch.
  if (cfg.exploit_runs_below > 1 && chunk.size() > 1) {
    const std::size_t runs = count_runs<T, KeyFn>(chunk, kf);
    if (runs <= cfg.exploit_runs_below) {
      std::vector<T> tmp(chunk.begin(), chunk.end());
      run_aware_sort<T, KeyFn>(tmp, cfg.stable, kf, cfg.exploit_runs_below);
      std::copy(tmp.begin(), tmp.end(), chunk.begin());
      return;
    }
  }
  if constexpr (std::is_unsigned_v<K>) {
    const bool use_radix =
        cfg.algo == LocalSortAlgo::kRadix ||
        (cfg.algo == LocalSortAlgo::kAuto && chunk.size() >= 2048);
    if (use_radix) {
      // radix_sort operates on a vector; chunks are array slices, so sort
      // through a scratch vector. (Radix needs O(n) scratch regardless.)
      std::vector<T> tmp(chunk.begin(), chunk.end());
      radix_sort(tmp, kf);
      std::copy(tmp.begin(), tmp.end(), chunk.begin());
      return;
    }
  }
  seq_sort<T, KeyFn>(chunk, cfg.stable, kf);
}

}  // namespace detail

/// Merge already-sorted chunks into `out` using `parts` parallel merge
/// tasks partitioned by `method`. Chunks must be passed in stability order
/// (origin order); the merge is stable across chunks when `stable` is set
/// (and ties always resolve by chunk index regardless).
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void parallel_merge_chunks(std::span<const std::span<const T>> chunks,
                           std::span<T> out, std::size_t parts, bool stable,
                           MergePartitionMethod method, KeyFn kf = {},
                           par::ThreadPool* pool = nullptr) {
  if (parts == 0) parts = 1;
  const MergePartition plan =
      plan_merge_partition<T, KeyFn>(chunks, parts, stable, method, kf);

  // Output offset of each part.
  std::vector<std::size_t> offsets(parts + 1, 0);
  for (std::size_t t = 0; t < parts; ++t) {
    offsets[t + 1] = offsets[t] + plan.part_size(t);
  }

  auto merge_part = [&](std::size_t t) {
    std::vector<std::span<const T>> pieces;
    pieces.reserve(chunks.size());
    for (std::size_t j = 0; j < chunks.size(); ++j) {
      const std::size_t b = plan.bounds[t][j];
      const std::size_t e = plan.bounds[t + 1][j];
      pieces.push_back(chunks[j].subspan(b, e - b));
    }
    kway_merge<T, KeyFn>(pieces, out.subspan(offsets[t], offsets[t + 1] - offsets[t]),
                         kf);
  };

  if (parts == 1) {
    merge_part(0);
    return;
  }
  par::ThreadPool& tp = pool != nullptr ? *pool : par::ThreadPool::global();
  tp.parallel_for(0, parts, merge_part);
}

/// Sort `data` in place with c-way shared-memory parallelism.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void local_sort(std::vector<T>& data, const LocalSortConfig& cfg, KeyFn kf = {},
                par::ThreadPool* pool = nullptr) {
  const std::size_t n = data.size();
  const auto c = static_cast<std::size_t>(cfg.threads < 1 ? 1 : cfg.threads);
  if (c == 1 || n < cfg.seq_threshold || n < 2 * c) {
    detail::sort_chunk<T, KeyFn>(std::span<T>(data), cfg, kf);
    return;
  }

  // Chunk boundaries: c near-equal contiguous chunks (origin order, which is
  // also the stability order).
  std::vector<std::size_t> bounds(c + 1, 0);
  for (std::size_t i = 0; i <= c; ++i) bounds[i] = i * n / c;

  par::ThreadPool& tp = pool != nullptr ? *pool : par::ThreadPool::global();
  tp.parallel_for(0, c, [&](std::size_t i) {
    detail::sort_chunk<T, KeyFn>(
        std::span<T>(data.data() + bounds[i], bounds[i + 1] - bounds[i]), cfg,
        kf);
  });

  std::vector<std::span<const T>> chunks(c);
  for (std::size_t i = 0; i < c; ++i) {
    chunks[i] = std::span<const T>(data.data() + bounds[i],
                                   bounds[i + 1] - bounds[i]);
  }
  std::vector<T> scratch(n);
  parallel_merge_chunks<T, KeyFn>(chunks, scratch, c, cfg.stable, cfg.method,
                                  kf, &tp);
  data = std::move(scratch);
}

}  // namespace sdss
