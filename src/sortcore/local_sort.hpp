// SdssLocalSort: shared-memory parallel sorting with skew-aware merging
// (paper Section 2.2).
//
// The strategy is the classic chunk/sort/merge: split the array into c
// chunks, sort each on its own core (std::sort or std::stable_sort per the
// stable flag), then merge the c sorted chunks in parallel. The merge uses
// the skew-aware partition of merge_partition.hpp, so heavily duplicated
// keys still yield c near-equal merge tasks — "SdssLocalSort is a shared
// memory version of SDS-Sort without network connection".
//
// Memory discipline: every transient buffer — radix ping-pong scratch,
// run-merge output, the chunk/offset tables, the O(n) merge destination —
// is borrowed from a per-thread ScratchArena (see arena.hpp). A steady-state
// local_sort performs zero heap allocations; kernels sort chunks in place.
//
// When the caller explicitly selects the radix kernel for unsigned keys and
// multiple threads, the chunk/sort/merge pipeline is bypassed entirely in
// favor of radix_sort_parallel: LSD radix with per-block histograms is
// already stable, parallel, and immune to key skew, so a post-merge would be
// pure overhead.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "par/thread_pool.hpp"
#include "sortcore/algo.hpp"
#include "sortcore/arena.hpp"
#include "sortcore/key.hpp"
#include "sortcore/kway_merge.hpp"
#include "sortcore/merge_partition.hpp"
#include "sortcore/radix.hpp"
#include "sortcore/runs.hpp"
#include "sortcore/seq_sort.hpp"

namespace sdss {

struct LocalSortConfig {
  int threads = 1;   ///< c: chunk count == worker count (paper's cores/node)
  bool stable = false;
  MergePartitionMethod method = MergePartitionMethod::kSkewAware;
  LocalSortAlgo algo = LocalSortAlgo::kComparison;
  std::size_t seq_threshold = 4096;  ///< below this, sort sequentially
  /// Recognize partially ordered chunks (paper Sections 1/2.7): when a
  /// chunk decomposes into at most this many natural runs, merge the runs
  /// (O(n log r), O(n) when already sorted) instead of a full sort. 0
  /// disables the scan.
  std::size_t exploit_runs_below = 64;
};

namespace detail {

/// Sort one contiguous chunk in place with the selected kernel. All scratch
/// comes from the calling thread's arena — no per-chunk heap allocation.
template <typename T, typename KeyFn>
void sort_chunk(std::span<T> chunk, const LocalSortConfig& cfg, KeyFn kf) {
  using K = KeyType<KeyFn, T>;
  if constexpr (!std::is_unsigned_v<K>) {
    if (cfg.algo == LocalSortAlgo::kRadix) {
      throw std::invalid_argument(
          "LocalSortAlgo::kRadix requires an unsigned integer key");
    }
  }
  if constexpr (simdk::eligible<T, KeyFn>) {
    // Tiny chunk of plain integer keys: the branchless sorting network
    // undercuts both the run scan and every full kernel below.
    if (chunk.size() <= detail::kSortNetworkMaxN) {
      simdk::sort_small(chunk.data(), chunk.size());
      return;
    }
  }
  // Partially ordered input: a cheap O(n) scan decides whether run merging
  // beats re-sorting from scratch.
  if (cfg.exploit_runs_below > 1 && chunk.size() > 1) {
    const std::size_t runs = count_runs<T, KeyFn>(chunk, kf);
    if (runs <= cfg.exploit_runs_below) {
      ArenaScope scope(ScratchArena::for_thread());
      run_aware_sort<T, KeyFn>(chunk, scope.acquire<T>(chunk.size()),
                               cfg.stable, kf, cfg.exploit_runs_below);
      return;
    }
  }
  if constexpr (std::is_unsigned_v<K>) {
    const bool use_radix =
        cfg.algo == LocalSortAlgo::kRadix ||
        (cfg.algo == LocalSortAlgo::kAuto && chunk.size() >= 2048);
    if (use_radix) {
      ArenaScope scope(ScratchArena::for_thread());
      radix_sort<T, KeyFn>(chunk, scope.acquire<T>(chunk.size()), kf);
      return;
    }
  }
  seq_sort<T, KeyFn>(chunk, cfg.stable, kf);
}

}  // namespace detail

/// Merge already-sorted chunks into `out` using `parts` parallel merge
/// tasks partitioned by `method`. Chunks must be passed in stability order
/// (origin order); the merge is stable across chunks when `stable` is set
/// (and ties always resolve by chunk index regardless).
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void parallel_merge_chunks(std::span<const std::span<const T>> chunks,
                           std::span<T> out, std::size_t parts, bool stable,
                           MergePartitionMethod method, KeyFn kf = {},
                           par::ThreadPool* pool = nullptr) {
  if (parts == 0) parts = 1;
  const MergePartition plan =
      plan_merge_partition<T, KeyFn>(chunks, parts, stable, method, kf);

  // Output offset of each part (caller-thread arena; read-only to workers).
  ArenaScope scope(ScratchArena::for_thread());
  auto offsets = scope.acquire<std::size_t>(parts + 1);
  offsets[0] = 0;
  for (std::size_t t = 0; t < parts; ++t) {
    offsets[t + 1] = offsets[t] + plan.part_size(t);
  }

  auto merge_part = [&](std::size_t t) {
    // Piece table from the executing thread's own arena: merge parts run on
    // pool workers, each of which has a private ScratchArena.
    ArenaScope part_scope(ScratchArena::for_thread());
    auto pieces = part_scope.acquire<std::span<const T>>(chunks.size());
    for (std::size_t j = 0; j < chunks.size(); ++j) {
      const std::size_t b = plan.bounds[t][j];
      const std::size_t e = plan.bounds[t + 1][j];
      pieces[j] = chunks[j].subspan(b, e - b);
    }
    kway_merge<T, KeyFn>(pieces,
                         out.subspan(offsets[t], offsets[t + 1] - offsets[t]),
                         kf);
  };

  if (parts == 1) {
    merge_part(0);
    return;
  }
  par::ThreadPool& tp = pool != nullptr ? *pool : par::ThreadPool::global();
  // Merge parts are coarse and deliberately size-balanced; grain 1 keeps
  // one part per claim so idle workers can steal the stragglers.
  tp.parallel_for(0, parts, merge_part, /*grain=*/1);
}

/// Sort `data` in place with c-way shared-memory parallelism.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void local_sort(std::vector<T>& data, const LocalSortConfig& cfg, KeyFn kf = {},
                par::ThreadPool* pool = nullptr) {
  using K = KeyType<KeyFn, T>;
  const std::size_t n = data.size();
  const auto c = static_cast<std::size_t>(cfg.threads < 1 ? 1 : cfg.threads);
  if (c == 1 || n < cfg.seq_threshold || n < 2 * c) {
    detail::sort_chunk<T, KeyFn>(std::span<T>(data), cfg, kf);
    return;
  }

  par::ThreadPool& tp = pool != nullptr ? *pool : par::ThreadPool::global();

  if constexpr (std::is_unsigned_v<K>) {
    if (cfg.algo == LocalSortAlgo::kRadix) {
      // Whole-array parallel radix: stable and skew-immune by construction,
      // so the chunk/sort/merge pipeline (and its partition planning) would
      // only add work.
      ArenaScope scope(ScratchArena::for_thread());
      radix_sort_parallel<T, KeyFn>(std::span<T>(data), scope.acquire<T>(n),
                                    tp, kf, /*blocks=*/c);
      return;
    }
  }

  // Chunk boundaries: c near-equal contiguous chunks (origin order, which is
  // also the stability order).
  ArenaScope scope(ScratchArena::for_thread());
  auto bounds = scope.acquire<std::size_t>(c + 1);
  for (std::size_t i = 0; i <= c; ++i) bounds[i] = i * n / c;

  // Chunk sorting is coarse: one chunk per claim for load balance.
  tp.parallel_for(
      0, c,
      [&](std::size_t i) {
        detail::sort_chunk<T, KeyFn>(
            std::span<T>(data.data() + bounds[i], bounds[i + 1] - bounds[i]),
            cfg, kf);
      },
      /*grain=*/1);

  auto chunks = scope.acquire<std::span<const T>>(c);
  for (std::size_t i = 0; i < c; ++i) {
    chunks[i] = std::span<const T>(data.data() + bounds[i],
                                   bounds[i + 1] - bounds[i]);
  }
  auto scratch = scope.acquire<T>(n);
  parallel_merge_chunks<T, KeyFn>(chunks, scratch, c, cfg.stable, cfg.method,
                                  kf, &tp);
  std::copy(scratch.begin(), scratch.end(), data.begin());
  detail::count_bytes_moved(n * sizeof(T));
}

}  // namespace sdss
