// Process-wide kernel memory-traffic counters.
//
// The simulated runtime already counts every wire byte (CommStats); this is
// the analogous ledger for the *compute* kernels: how many record bytes the
// sort/merge kernels write, how much scratch they borrow from the arenas,
// how large the arenas grew, and — the number the allocation-free redesign
// gates on — how many heap allocations the kernel paths performed. The
// counters are deterministic for a fixed single-threaded workload, so
// bench_local_sort can check them against a committed baseline the same way
// bench_collectives gates wire volume (see docs/BENCHMARKING.md).
//
// Cost discipline: kernels bump the counters once per kernel *invocation*
// (relaxed atomics, never per element), so the accounting is free relative
// to the O(n) work it describes.
#pragma once

#include <atomic>
#include <cstdint>

namespace sdss {

struct KernelCounters {
  /// Record bytes written by the sortcore kernels' explicit data movement:
  /// radix scatter passes, k-way merge output, run-merge output, scratch
  /// copy-backs. Comparison-sort internal moves (std::sort) are not
  /// observable and are not counted.
  std::atomic<std::uint64_t> bytes_moved{0};
  /// Cumulative bytes acquired from ScratchArenas (every acquire, even when
  /// served from an already-grown arena).
  std::atomic<std::uint64_t> scratch_bytes{0};
  /// High-water mark: the largest number of simultaneously-live arena bytes
  /// observed on any one thread.
  std::atomic<std::uint64_t> arena_hwm{0};
  /// Heap allocations performed by kernel paths: arena block growth plus any
  /// fallback vector the kernels still allocate. Zero in steady state.
  std::atomic<std::uint64_t> heap_allocs{0};
  /// Record bytes emitted by the k-way merge's galloping bulk-copy fast
  /// path — a subset of bytes_moved that attributes merge traffic to the
  /// stretch-copy path specifically (duplicate-heavy or range-disjoint
  /// runs drive this toward the merge's whole output).
  std::atomic<std::uint64_t> merge_gallop_bytes{0};
  /// SIMD shim dispatch counts per kernel family (util/simd.hpp +
  /// sortcore/simd_kernels.hpp): how many times the histogram, sorting
  /// network, and gallop-scan kernels went through the feature-detected
  /// dispatch. ISA-independent by design (the cutoffs do not depend on the
  /// active ISA), so they are deterministic for fixed single-thread
  /// workloads and gate-able like the byte counters.
  std::atomic<std::uint64_t> simd_hist_calls{0};
  std::atomic<std::uint64_t> simd_sortnet_calls{0};
  std::atomic<std::uint64_t> simd_gallop_calls{0};
};

/// The process-wide counter block (all threads share it).
KernelCounters& kernel_counters();

/// Plain-value snapshot for telemetry and before/after deltas.
struct KernelSnapshot {
  std::uint64_t bytes_moved = 0;
  std::uint64_t scratch_bytes = 0;
  std::uint64_t arena_hwm = 0;
  std::uint64_t heap_allocs = 0;
  std::uint64_t merge_gallop_bytes = 0;
  std::uint64_t simd_hist_calls = 0;
  std::uint64_t simd_sortnet_calls = 0;
  std::uint64_t simd_gallop_calls = 0;

  KernelSnapshot delta_since(const KernelSnapshot& before) const {
    KernelSnapshot d;
    d.bytes_moved = bytes_moved - before.bytes_moved;
    d.scratch_bytes = scratch_bytes - before.scratch_bytes;
    // The high-water mark is a maximum, not a flow: report the level, not a
    // difference (a delta of maxima is meaningless).
    d.arena_hwm = arena_hwm;
    d.heap_allocs = heap_allocs - before.heap_allocs;
    d.merge_gallop_bytes = merge_gallop_bytes - before.merge_gallop_bytes;
    d.simd_hist_calls = simd_hist_calls - before.simd_hist_calls;
    d.simd_sortnet_calls = simd_sortnet_calls - before.simd_sortnet_calls;
    d.simd_gallop_calls = simd_gallop_calls - before.simd_gallop_calls;
    return d;
  }
};

KernelSnapshot snapshot_kernel_counters();

namespace detail {

inline void count_bytes_moved(std::uint64_t bytes) {
  kernel_counters().bytes_moved.fetch_add(bytes, std::memory_order_relaxed);
}

inline void count_heap_alloc() {
  kernel_counters().heap_allocs.fetch_add(1, std::memory_order_relaxed);
}

/// Bumped once per kway_merge invocation with the bytes its galloping
/// bulk copies emitted (never per stretch — cost discipline above).
inline void count_merge_gallop_bytes(std::uint64_t bytes) {
  if (bytes == 0) return;
  kernel_counters().merge_gallop_bytes.fetch_add(bytes,
                                                 std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace sdss
