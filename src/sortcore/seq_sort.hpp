// Sequential sorting entry points: thin wrappers around std::sort and
// std::stable_sort selected by the stable flag, exactly the per-core
// primitives SDS-Sort builds on (paper Section 2.2 and Table 1).
#pragma once

#include <algorithm>
#include <span>

#include "sortcore/key.hpp"
#include "sortcore/simd_kernels.hpp"

namespace sdss {

template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void seq_sort(std::span<T> data, bool stable, KeyFn kf = {}) {
  if constexpr (simdk::eligible<T, KeyFn>) {
    // Branchless sorting-network base case for plain integer keys; the
    // stable flag is moot here (equal keys are identical records).
    if (data.size() <= detail::kSortNetworkMaxN) {
      simdk::sort_small(data.data(), data.size());
      return;
    }
  }
  if (stable) {
    std::stable_sort(data.begin(), data.end(), by_key(kf));
  } else {
    std::sort(data.begin(), data.end(), by_key(kf));
  }
}

template <typename T, KeyFunction<T> KeyFn = IdentityKey>
bool is_sorted_by_key(std::span<const T> data, KeyFn kf = {}) {
  return std::is_sorted(data.begin(), data.end(), by_key(kf));
}

}  // namespace sdss
