// K-way merging of sorted runs with a tournament (loser) tree.
//
// This is the workhorse of the final local-ordering step when it chooses
// "merging" (p sorted chunks arrive from p processes, paper Section 2.7,
// complexity O(n log p)) and of the shared-memory parallel merge inside
// SdssLocalSort. The merge is stable across runs: ties are won by the run
// with the smaller index, so concatenating runs in origin order and merging
// preserves the relative order of equal keys.
//
// Allocation discipline: all internal state (the live-run table, the
// tournament tree, the per-run cursors) is borrowed from this thread's
// ScratchArena — a steady-state merge performs zero heap allocations.
//
// Galloping: when one run keeps winning (duplicate-heavy inputs, or runs
// with little key overlap), the drain loop switches to a bulk pop — it
// computes the tree's runner-up, advances through the winning run while its
// elements still beat the runner-up's head (ties resolve by run index, so
// stability is preserved), and emits the whole stretch with one std::copy
// instead of one tree replay per element.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "sortcore/arena.hpp"
#include "sortcore/kernel_stats.hpp"
#include "sortcore/key.hpp"
#include "sortcore/simd_kernels.hpp"

namespace sdss {

/// Tournament tree over k sorted runs. pop() yields the globally smallest
/// remaining element (ties by run index) in O(log k); pop_run() bulk-copies
/// the winner's maximal emittable stretch. The tree is padded to the next
/// power of two with permanently exhausted pseudo-runs. All storage comes
/// from the ArenaScope passed at construction and must outlive the tree.
template <typename T, typename KeyFn>
class LoserTree {
 public:
  LoserTree(std::span<const std::span<const T>> runs, KeyFn kf,
            ArenaScope& scope)
      : runs_(runs), kf_(kf) {
    const std::size_t k = runs_.size();
    cap_ = 1;
    while (cap_ < k) cap_ <<= 1;
    pos_ = scope.acquire<std::size_t>(k);
    std::fill(pos_.begin(), pos_.end(), std::size_t{0});
    tree_ = scope.acquire<std::size_t>(cap_);
    std::fill(tree_.begin(), tree_.end(), kEmpty);
    remaining_ = 0;
    for (const auto& r : runs_) remaining_ += r.size();

    // Bottom-up tournament: w[x] is the winner at tree position x; internal
    // node x stores the loser of the match played there. w is transient —
    // scoped so its arena bytes release before the drain starts.
    ArenaScope build(scope.arena());
    auto w = build.acquire<std::size_t>(2 * cap_);
    std::fill(w.begin(), w.end(), kEmpty);
    for (std::size_t i = 0; i < k; ++i) w[cap_ + i] = i;
    for (std::size_t node = cap_ - 1; node >= 1; --node) {
      const std::size_t a = w[2 * node];
      const std::size_t b = w[2 * node + 1];
      if (beats(a, b)) {
        w[node] = a;
        tree_[node] = b;
      } else {
        w[node] = b;
        tree_[node] = a;
      }
    }
    winner_ = cap_ > 1 ? w[1] : (k == 1 ? 0 : kEmpty);
  }

  bool empty() const { return remaining_ == 0; }
  std::size_t size() const { return remaining_; }

  /// Index of the run holding the current minimum. Precondition: !empty().
  std::size_t min_run() const { return winner_; }

  /// Pop the current minimum. Precondition: !empty().
  const T& pop() {
    const std::size_t r = winner_;
    const T& v = runs_[r][pos_[r]];
    ++pos_[r];
    --remaining_;
    replay(r);
    return v;
  }

  /// Bulk pop: copy the winner's maximal stretch — every element that still
  /// beats the runner-up's head under the (key, run index) order — to `out`
  /// with one std::copy, then replay once. Returns the elements copied
  /// (always >= 1). Precondition: !empty().
  T* pop_run(T* out) {
    const std::size_t w = winner_;
    // The runner-up is the best of the losers stored on w's leaf-to-root
    // path (every other run lost exactly once against that path).
    std::size_t rival = kEmpty;
    for (std::size_t node = (w + cap_) / 2; node >= 1; node /= 2) {
      if (rival == kEmpty || beats(tree_[node], rival)) rival = tree_[node];
    }
    const std::span<const T>& run = runs_[w];
    std::size_t i = pos_[w];
    if (rival == kEmpty || exhausted(rival)) {
      i = run.size();  // no contender: drain the whole run
    } else {
      const auto& limit = kf_(runs_[rival][pos_[rival]]);
      if constexpr (simdk::eligible<T, KeyFn>) {
        // Vectorized stop-lane scan; `w < rival` keeps the tie rule (ties
        // belong to the lower run index) identical to the scalar loops.
        i += simdk::gallop(run.data() + i, run.size() - i, limit,
                           /*inclusive=*/w < rival);
      } else if (w < rival) {
        // Ties belong to w: advance while key <= limit.
        while (i < run.size() && !(limit < kf_(run[i]))) ++i;
      } else {
        while (i < run.size() && kf_(run[i]) < limit) ++i;
      }
    }
    out = std::copy(run.begin() + static_cast<std::ptrdiff_t>(pos_[w]),
                    run.begin() + static_cast<std::ptrdiff_t>(i), out);
    gallop_bytes_ += (i - pos_[w]) * sizeof(T);
    remaining_ -= i - pos_[w];
    pos_[w] = i;
    replay(w);
    return out;
  }

  /// Record bytes the galloping bulk copies emitted so far; kway_merge
  /// flushes this into kernel_stats once per merge (cost discipline).
  std::uint64_t gallop_bytes() const { return gallop_bytes_; }

  /// External-merge support (sortcore/spill.hpp): true when run r's current
  /// backing span is fully consumed.
  bool run_exhausted(std::size_t r) const { return pos_[r] >= runs_[r].size(); }

  /// External-merge support: the caller replaced run r's exhausted backing
  /// span in place (the constructor's `runs` span aliases caller storage, so
  /// e.g. a file-backed cursor can load its next frame into the same slot)
  /// and the run must be re-armed from position 0.
  /// Precondition: run_exhausted(r) held before the span was swapped.
  ///
  /// This cannot use replay(): that walk is only sound for the run that just
  /// won (its path's passing slot is free). An exhausted run lost its way
  /// back in and is lodged in an internal node, so its key change invalidates
  /// matches replay() would not revisit. A full bottom-up rebuild is O(k),
  /// allocation-free, and amortizes to O(k/frame) per emitted record.
  void refill_run(std::size_t r) {
    pos_[r] = 0;
    remaining_ += runs_[r].size();
    winner_ = cap_ > 1 ? rebuild(1) : (runs_.empty() ? kEmpty : 0);
  }

 private:
  static constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);

  bool exhausted(std::size_t run) const {
    return run == kEmpty || pos_[run] >= runs_[run].size();
  }

  /// True if run a's head must be emitted no later than run b's head.
  bool beats(std::size_t a, std::size_t b) const {
    if (exhausted(b)) return true;
    if (exhausted(a)) return false;
    const auto& ka = kf_(runs_[a][pos_[a]]);
    const auto& kb = kf_(runs_[b][pos_[b]]);
    if (ka < kb) return true;
    if (kb < ka) return false;
    return a < b;  // stability: lower run index wins ties
  }

  /// Recompute every match in `node`'s subtree from the current run heads;
  /// stores losers and returns the subtree winner.
  std::size_t rebuild(std::size_t node) {
    if (node >= cap_) {
      const std::size_t i = node - cap_;
      return i < runs_.size() ? i : kEmpty;
    }
    const std::size_t a = rebuild(2 * node);
    const std::size_t b = rebuild(2 * node + 1);
    if (beats(a, b)) {
      tree_[node] = b;
      return a;
    }
    tree_[node] = a;
    return b;
  }

  /// Replay the path from run r's leaf to the root after its head changed.
  void replay(std::size_t run) {
    std::size_t winner = run;
    for (std::size_t node = (run + cap_) / 2; node >= 1; node /= 2) {
      if (beats(tree_[node], winner)) std::swap(tree_[node], winner);
    }
    winner_ = winner;
  }

  std::span<const std::span<const T>> runs_;
  std::span<std::size_t> pos_;
  std::span<std::size_t> tree_;  // internal nodes hold losers; [1] is root
  std::size_t cap_ = 1;          // padded leaf count (power of two)
  std::size_t remaining_ = 0;
  std::size_t winner_ = kEmpty;
  std::uint64_t gallop_bytes_ = 0;
  KeyFn kf_;
};

/// Merge `runs` (each individually sorted by kf) into `out`, stably across
/// run order. `out.size()` must equal the total input size. Small run counts
/// use specialized paths (copy / two-way merge); three or more runs use the
/// loser tree with the galloping drain.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void kway_merge(std::span<const std::span<const T>> runs, std::span<T> out,
                KeyFn kf = {}) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  if (out.size() != total) {
    throw std::invalid_argument("kway_merge: output size mismatch");
  }
  if (total == 0) return;
  detail::count_bytes_moved(total * sizeof(T));

  ArenaScope scope(ScratchArena::for_thread());
  // Drop empty runs but keep relative order (stability depends on it).
  auto live_store = scope.acquire<std::span<const T>>(runs.size());
  std::size_t nlive = 0;
  for (const auto& r : runs) {
    if (!r.empty()) live_store[nlive++] = r;
  }
  const std::span<const std::span<const T>> live(live_store.data(), nlive);
  if (live.size() == 1) {
    std::copy(live[0].begin(), live[0].end(), out.begin());
    return;
  }
  if (live.size() == 2) {
    // Two-way merge; first-run priority on ties gives stability.
    auto a = live[0].begin();
    auto b = live[1].begin();
    auto o = out.begin();
    while (a != live[0].end() && b != live[1].end()) {
      if (kf(*b) < kf(*a)) {
        *o++ = *b++;
      } else {
        *o++ = *a++;
      }
    }
    o = std::copy(a, live[0].end(), o);
    std::copy(b, live[1].end(), o);
    return;
  }

  LoserTree<T, KeyFn> tree(live, kf, scope);
  T* o = out.data();
  // Random interleavings stay on the cheap per-element pop; two consecutive
  // wins by one run signal a stretch (duplicate runs, disjoint key ranges)
  // and switch to the galloping bulk pop.
  std::size_t last = static_cast<std::size_t>(-1);
  bool streak = false;
  while (!tree.empty()) {
    const std::size_t r = tree.min_run();
    if (r == last && streak) {
      o = tree.pop_run(o);
    } else {
      streak = r == last;
      *o++ = tree.pop();
    }
    last = r;
  }
  detail::count_merge_gallop_bytes(tree.gallop_bytes());
}

/// Convenience overload: merge and return a fresh vector.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<T> kway_merge_to_vector(std::span<const std::span<const T>> runs,
                                    KeyFn kf = {}) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  std::vector<T> out(total);
  kway_merge<T, KeyFn>(runs, out, kf);
  return out;
}

}  // namespace sdss
