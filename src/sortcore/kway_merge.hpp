// K-way merging of sorted runs with a tournament (loser) tree.
//
// This is the workhorse of the final local-ordering step when it chooses
// "merging" (p sorted chunks arrive from p processes, paper Section 2.7,
// complexity O(n log p)) and of the shared-memory parallel merge inside
// SdssLocalSort. The merge is stable across runs: ties are won by the run
// with the smaller index, so concatenating runs in origin order and merging
// preserves the relative order of equal keys.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "sortcore/key.hpp"

namespace sdss {

/// Tournament tree over k sorted runs. pop() yields the globally smallest
/// remaining element (ties by run index) in O(log k). The tree is padded to
/// the next power of two with permanently exhausted pseudo-runs.
template <typename T, typename KeyFn>
class LoserTree {
 public:
  LoserTree(std::span<const std::span<const T>> runs, KeyFn kf)
      : runs_(runs.begin(), runs.end()), pos_(runs.size(), 0), kf_(kf) {
    const std::size_t k = runs_.size();
    cap_ = 1;
    while (cap_ < k) cap_ <<= 1;
    remaining_ = 0;
    for (const auto& r : runs_) remaining_ += r.size();

    // Bottom-up tournament: w[x] is the winner at tree position x; internal
    // node x stores the loser of the match played there.
    tree_.assign(cap_, kEmpty);
    std::vector<std::size_t> w(2 * cap_, kEmpty);
    for (std::size_t i = 0; i < k; ++i) w[cap_ + i] = i;
    for (std::size_t node = cap_ - 1; node >= 1; --node) {
      const std::size_t a = w[2 * node];
      const std::size_t b = w[2 * node + 1];
      if (beats(a, b)) {
        w[node] = a;
        tree_[node] = b;
      } else {
        w[node] = b;
        tree_[node] = a;
      }
    }
    winner_ = cap_ > 1 ? w[1] : (k == 1 ? 0 : kEmpty);
  }

  bool empty() const { return remaining_ == 0; }
  std::size_t size() const { return remaining_; }

  /// Index of the run holding the current minimum. Precondition: !empty().
  std::size_t min_run() const { return winner_; }

  /// Pop the current minimum. Precondition: !empty().
  const T& pop() {
    const std::size_t r = winner_;
    const T& v = runs_[r][pos_[r]];
    ++pos_[r];
    --remaining_;
    replay(r);
    return v;
  }

 private:
  static constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);

  bool exhausted(std::size_t run) const {
    return run == kEmpty || pos_[run] >= runs_[run].size();
  }

  /// True if run a's head must be emitted no later than run b's head.
  bool beats(std::size_t a, std::size_t b) const {
    if (exhausted(b)) return true;
    if (exhausted(a)) return false;
    const auto& ka = kf_(runs_[a][pos_[a]]);
    const auto& kb = kf_(runs_[b][pos_[b]]);
    if (ka < kb) return true;
    if (kb < ka) return false;
    return a < b;  // stability: lower run index wins ties
  }

  /// Replay the path from run r's leaf to the root after its head changed.
  void replay(std::size_t run) {
    std::size_t winner = run;
    for (std::size_t node = (run + cap_) / 2; node >= 1; node /= 2) {
      if (beats(tree_[node], winner)) std::swap(tree_[node], winner);
    }
    winner_ = winner;
  }

  std::vector<std::span<const T>> runs_;
  std::vector<std::size_t> pos_;
  std::vector<std::size_t> tree_;  // internal nodes hold losers; [1] is root
  std::size_t cap_ = 1;            // padded leaf count (power of two)
  std::size_t remaining_ = 0;
  std::size_t winner_ = kEmpty;
  KeyFn kf_;
};

/// Merge `runs` (each individually sorted by kf) into `out`, stably across
/// run order. `out.size()` must equal the total input size. Small run counts
/// use specialized paths (copy / two-way merge).
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void kway_merge(std::span<const std::span<const T>> runs, std::span<T> out,
                KeyFn kf = {}) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  if (out.size() != total) {
    throw std::invalid_argument("kway_merge: output size mismatch");
  }
  // Drop empty runs but keep relative order (stability depends on it).
  std::vector<std::span<const T>> live;
  live.reserve(runs.size());
  for (const auto& r : runs) {
    if (!r.empty()) live.push_back(r);
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    std::copy(live[0].begin(), live[0].end(), out.begin());
    return;
  }
  if (live.size() == 2) {
    // Two-way merge; first-run priority on ties gives stability.
    auto a = live[0].begin();
    auto b = live[1].begin();
    auto o = out.begin();
    while (a != live[0].end() && b != live[1].end()) {
      if (kf(*b) < kf(*a)) {
        *o++ = *b++;
      } else {
        *o++ = *a++;
      }
    }
    o = std::copy(a, live[0].end(), o);
    std::copy(b, live[1].end(), o);
    return;
  }
  LoserTree<T, KeyFn> tree(live, kf);
  auto o = out.begin();
  while (!tree.empty()) *o++ = tree.pop();
}

/// Convenience overload: merge and return a fresh vector.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<T> kway_merge_to_vector(std::span<const std::span<const T>> runs,
                                    KeyFn kf = {}) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  std::vector<T> out(total);
  kway_merge<T, KeyFn>(runs, out, kf);
  return out;
}

}  // namespace sdss
