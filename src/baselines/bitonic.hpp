// Distributed bitonic sort baseline (Bilardi & Nicolau; the paper's [4]).
//
// Block bitonic sort over a power-of-two communicator: every rank keeps a
// locally sorted block and participates in log²(p) compare-exchange rounds,
// each exchanging its whole block with a hypercube partner and keeping the
// low or high half. Communication volume is Θ(n log² p) — the reason the
// paper (Section 5) prefers sampling sorts on distributed memory — which
// this implementation reproduces measurably.
//
// Uneven shard sizes are handled by padding to the global maximum with
// flagged sentinel records that sort above every real record and are
// stripped before returning.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/pivots.hpp"
#include "sim/comm.hpp"
#include "sortcore/key.hpp"
#include "sortcore/seq_sort.hpp"
#include "util/phase_ledger.hpp"

namespace sdss::baselines {

/// Sort the distributed vector with bitonic sort. Requires a power-of-two
/// communicator size. Non-stable.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<T> bitonic_sort(sim::Comm& comm, std::vector<T> data,
                            KeyFn kf = {}) {
  const int p = comm.size();
  if (p > 1 && (p & (p - 1)) != 0) {
    throw CommError("bitonic_sort: communicator size must be a power of two");
  }
  PhaseLedger& ledger = comm.ledger();
  if (p <= 1) {
    seq_sort<T, KeyFn>(data, /*stable=*/false, kf);
    return data;
  }

  // Pad to equal block length with sentinels: (key, is_pad) lexicographic,
  // so every pad sorts after every real record of any key.
  struct Padded {
    T value;
    std::uint8_t pad;
  };
  auto padded_key = [kf](const Padded& e) {
    return std::make_pair(kf(e.value), e.pad);
  };

  std::vector<Padded> block;
  {
    ScopedPhase phase(&ledger, Phase::kOther);
    const std::size_t max_n = comm.allreduce<std::size_t>(
        data.size(),
        [](std::size_t a, std::size_t b) { return a > b ? a : b; });
    block.reserve(max_n);
    for (const T& v : data) block.push_back(Padded{v, 0});
    const Padded sentinel{data.empty() ? T{} : data.front(), 1};
    block.resize(max_n, sentinel);
    std::sort(block.begin(), block.end(), by_key(padded_key));
  }
  {
    ScopedPhase phase(&ledger, Phase::kExchange);
    detail::bitonic_sort_blocks(comm, block, padded_key);
  }

  std::vector<T> out;
  out.reserve(block.size());
  for (const Padded& e : block) {
    if (e.pad == 0) out.push_back(e.value);
  }
  return out;
}

}  // namespace sdss::baselines
