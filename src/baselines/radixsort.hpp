// Distributed radix sort baseline (Thearling & Smith, the paper's [30]).
//
// The classic non-sampling competitor: build a global histogram of the top
// `kBucketBits` key bits, carve the bucket space into p contiguous ranges of
// near-equal total count, exchange once, finish locally. Because a bucket —
// like a duplicated sample pivot — cannot be subdivided by key value alone,
// a hot key overloads whichever rank owns its bucket: the same skew
// sensitivity the sampling sorts exhibit, measured in the extra benches.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/exchange.hpp"
#include "core/local_order.hpp"
#include "sim/comm.hpp"
#include "sortcore/arena.hpp"
#include "sortcore/key.hpp"
#include "sortcore/radix.hpp"
#include "util/phase_ledger.hpp"

namespace sdss::baselines {

struct RadixSortConfig {
  /// Histogram resolution: 2^bits buckets over the top key bits.
  int bucket_bits = 12;
  /// Simulated per-rank memory budget in records (0 = unlimited).
  std::size_t mem_limit_records = 0;
  /// Final-merge parallelism.
  int threads = 1;
};

/// Sort the distributed vector by kf(record), which must be an unsigned
/// integer. Non-stable across ranks (stable within, by radix construction).
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<T> radix_sort_distributed(sim::Comm& comm, std::vector<T> data,
                                      const RadixSortConfig& cfg = {},
                                      KeyFn kf = {}) {
  using K = KeyType<KeyFn, T>;
  static_assert(std::is_unsigned_v<K>,
                "distributed radix sort requires an unsigned integer key");
  PhaseLedger& ledger = comm.ledger();
  {
    // Explicit span + arena-scratch form of the local radix pass: the O(n)
    // ping-pong buffer comes from this rank's ScratchArena, so repeated
    // distributed sorts reuse one warm buffer instead of reallocating.
    ScopedPhase phase(&ledger, Phase::kOther);
    ArenaScope scope(ScratchArena::for_thread());
    radix_sort<T, KeyFn>(std::span<T>(data), scope.acquire<T>(data.size()),
                         kf);
  }
  const auto p = static_cast<std::size_t>(comm.size());
  if (p <= 1) return data;

  // Bucket by the top bits of the OCCUPIED key range, not the key type's
  // range: with e.g. 40-bit keys in a 64-bit type, shifting by 52 would put
  // every record in bucket 0 and rank 0 would drown.
  const K local_max = data.empty() ? K{0} : kf(data.back());  // sorted data
  const K global_max = comm.allreduce<K>(
      local_max, [](K a, K b) { return a > b ? a : b; });
  const int width = std::bit_width(global_max);
  const int shift = width > cfg.bucket_bits ? width - cfg.bucket_bits : 0;
  const std::size_t buckets = std::size_t{1} << cfg.bucket_bits;
  auto bucket_of = [&](const T& v) {
    const auto b = static_cast<std::size_t>(kf(v) >> shift);
    return b < buckets ? b : buckets - 1;
  };

  std::vector<std::size_t> bounds(p + 1, 0);
  bounds[p] = data.size();
  {
    ScopedPhase phase(&ledger, Phase::kPivotSelection);
    // Local histogram over the (already sorted) data: bucket b occupies
    // [start[b], start[b+1]).
    std::vector<std::uint64_t> hist(buckets, 0);
    for (const T& v : data) ++hist[bucket_of(v)];
    const auto global = comm.allreduce_vec<std::uint64_t>(
        hist, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    std::uint64_t total = 0;
    for (std::uint64_t h : global) total += h;

    // Greedy carve: walk buckets, closing a rank's range once its count
    // reaches the remaining-average target.
    std::vector<std::size_t> bucket_end(p, buckets);  // first bucket NOT owned
    std::uint64_t acc = 0;
    std::uint64_t assigned = 0;
    std::size_t rank_idx = 0;
    for (std::size_t b = 0; b < buckets && rank_idx + 1 < p; ++b) {
      acc += global[b];
      const std::uint64_t target =
          (total - assigned) / static_cast<std::uint64_t>(p - rank_idx);
      if (acc >= target) {
        bucket_end[rank_idx] = b + 1;
        assigned += acc;
        acc = 0;
        ++rank_idx;
      }
    }
    for (; rank_idx + 1 < p; ++rank_idx) bucket_end[rank_idx] = buckets;

    // Local boundaries: rank d receives local records whose bucket is in
    // [bucket_end[d-1], bucket_end[d]); data is sorted, so binary search.
    auto bucket_less = [&](const T& v, std::size_t b) {
      return bucket_of(v) < b;
    };
    for (std::size_t d = 0; d + 1 < p; ++d) {
      bounds[d + 1] = static_cast<std::size_t>(
          std::lower_bound(data.begin(), data.end(), bucket_end[d],
                           bucket_less) -
          data.begin());
    }
  }

  ExchangePlan plan;
  std::vector<T> recv;
  {
    ScopedPhase phase(&ledger, Phase::kExchange);
    plan = plan_exchange(comm, bounds, cfg.mem_limit_records);
    recv = sync_exchange<T>(comm, data, plan);
  }
  {
    ScopedPhase phase(&ledger, Phase::kLocalOrdering);
    return merge_all<T, KeyFn>(std::move(recv), plan.rcounts, plan.rdispls,
                               /*stable=*/false, cfg.threads, kf);
  }
}

}  // namespace sdss::baselines
