// HykSort (Sundar, Malhotra, Biros, ICS'13) — the paper's state-of-the-art
// comparator.
//
// k-way hypercube quicksort on a distributed communicator: each round
// selects k-1 splitters by iterative global histogramming of key values,
// partitions the locally sorted data into k buckets, regroups the ranks
// into k blocks with an all-to-all (each rank sends bucket g to the peer
// g·gsize + rank mod gsize), merges what arrived, and recurses on the
// block-local communicator. After log_k(p) rounds the data is globally
// sorted across ranks.
//
// Faithfully reproduced weakness (the paper's entire point): splitters are
// *key values* with no secondary key, so a run of duplicated keys cannot be
// subdivided — whole duplicate populations land on single ranks, inflating
// RDFA (Table 3: ∞) and, with a per-rank memory budget, dying with OOM
// (Figs. 8/10).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/exchange.hpp"
#include "core/histogram_pivots.hpp"
#include "sim/comm.hpp"
#include "sortcore/key.hpp"
#include "sortcore/kway_merge.hpp"
#include "sortcore/local_sort.hpp"
#include "util/error.hpp"
#include "util/phase_ledger.hpp"

namespace sdss::baselines {

struct HykSortConfig {
  /// k-way communication split; the paper (and [28]) use 128 as optimal.
  int kway = 128;
  /// Simulated per-rank memory budget in records (0 = unlimited).
  std::size_t mem_limit_records = 0;
  /// Histogram candidates sampled per rank per refinement round.
  std::size_t splitter_samples = 64;
  /// Histogram refinement rounds.
  int refine_rounds = 2;
  /// Shared-memory parallelism of the initial local sort (HykSort's own
  /// sample-based — not skew-aware — parallel merge).
  int threads = 1;
};

namespace detail {

/// HykSort's splitters come from the shared histogram selector
/// (core/histogram_pivots.hpp), parameterized by this config.
template <typename T, typename KeyFn>
std::vector<KeyType<KeyFn, T>> histogram_splitters(
    sim::Comm& comm, std::span<const T> sorted, int k,
    const HykSortConfig& cfg, KeyFn kf) {
  HistogramSelectConfig hs;
  hs.samples_per_rank = cfg.splitter_samples;
  hs.refine_rounds = cfg.refine_rounds;
  return histogram_select_splitters<T, KeyFn>(comm, sorted, k, hs, kf);
}

}  // namespace detail

/// Sort the distributed vector with HykSort. Non-stable. Throws SimOomError
/// when a rank's post-exchange volume exceeds the configured budget.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<T> hyksort(sim::Comm& comm, std::vector<T> data,
                       const HykSortConfig& cfg = {}, KeyFn kf = {}) {
  using K = KeyType<KeyFn, T>;
  PhaseLedger& ledger = comm.ledger();
  {
    // HykSort's shared-memory local sort uses sample-based (non-skew-aware)
    // parallel merging — the Fig. 6a comparison point.
    ScopedPhase phase(&ledger, Phase::kOther);
    LocalSortConfig lcfg;
    lcfg.threads = cfg.threads;
    lcfg.method = MergePartitionMethod::kSampleOnly;
    local_sort<T, KeyFn>(data, lcfg, kf);
  }

  sim::Comm cur = comm;
  while (cur.size() > 1) {
    const int p = cur.size();
    int k = std::min(cfg.kway, p);
    while (p % k != 0) --k;  // k must divide p for block regrouping
    const int gsize = p / k;

    std::vector<K> splitters;
    {
      ScopedPhase phase(&ledger, Phase::kPivotSelection);
      splitters = detail::histogram_splitters<T, KeyFn>(cur, data, k, cfg, kf);
    }

    {
      ScopedPhase phase(&ledger, Phase::kExchange);
      // Bucket boundaries (plain upper_bound — duplicates are NOT split).
      std::vector<std::size_t> bucket_bounds(static_cast<std::size_t>(k) + 1,
                                             0);
      bucket_bounds[static_cast<std::size_t>(k)] = data.size();
      auto less_key = [&kf](const K& key, const T& e) { return key < kf(e); };
      for (int g = 1; g < k; ++g) {
        bucket_bounds[static_cast<std::size_t>(g)] = static_cast<std::size_t>(
            std::upper_bound(data.begin(), data.end(),
                             splitters[static_cast<std::size_t>(g - 1)],
                             less_key) -
            data.begin());
      }
      // Send bucket g to rank g*gsize + (rank % gsize).
      std::vector<std::size_t> bounds(static_cast<std::size_t>(p) + 1, 0);
      std::vector<std::size_t> scounts(static_cast<std::size_t>(p), 0);
      std::vector<std::size_t> sdispls(static_cast<std::size_t>(p), 0);
      for (int g = 0; g < k; ++g) {
        const int dest = g * gsize + (cur.rank() % gsize);
        const auto gi = static_cast<std::size_t>(g);
        scounts[static_cast<std::size_t>(dest)] =
            bucket_bounds[gi + 1] - bucket_bounds[gi];
        sdispls[static_cast<std::size_t>(dest)] = bucket_bounds[gi];
      }
      const auto rcounts = cur.alltoall<std::size_t>(scounts);
      std::vector<std::size_t> rdispls(static_cast<std::size_t>(p), 0);
      std::size_t off = 0;
      for (std::size_t s = 0; s < static_cast<std::size_t>(p); ++s) {
        rdispls[s] = off;
        off += rcounts[s];
      }
      check_mem_budget(cur.rank(), off, cfg.mem_limit_records);
      std::vector<T> recv(off);
      cur.alltoallv<T>(data, scounts, sdispls, recv, rcounts, rdispls);

      // Merge the (up to k non-empty) received chunks. The paper's HykSort
      // overlaps this with the exchange, which is why its reported Exchange
      // time contains local ordering (paper footnote 4); we account it the
      // same way.
      std::vector<std::span<const T>> chunks;
      for (std::size_t s = 0; s < static_cast<std::size_t>(p); ++s) {
        if (rcounts[s] > 0) {
          chunks.emplace_back(recv.data() + rdispls[s], rcounts[s]);
        }
      }
      std::vector<T> merged(off);
      kway_merge<T, KeyFn>(chunks, merged, kf);
      data = std::move(merged);
    }

    cur = cur.split(cur.rank() / gsize, cur.rank());
  }
  return data;
}

}  // namespace sdss::baselines
