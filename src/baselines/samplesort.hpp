// Classic parallel sort by regular sampling (PSS; Li et al. '93, the
// paper's [19]).
//
// The textbook three-step algorithm SDS-Sort descends from: local sort,
// regular sampling with gather-sort-select pivot selection on rank 0, plain
// upper_bound partitioning, one all-to-all, final k-way merge. No skew
// handling: duplicated global pivots send every duplicate to one process,
// which is the O(2N/p + d) load bound SDS-Sort's O(4N/p) replaces.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/exchange.hpp"
#include "core/local_order.hpp"
#include "core/sampling.hpp"
#include "sim/comm.hpp"
#include "sortcore/key.hpp"
#include "sortcore/seq_sort.hpp"
#include "util/phase_ledger.hpp"

namespace sdss::baselines {

struct SampleSortConfig {
  std::size_t mem_limit_records = 0;  ///< simulated per-rank budget (0 = off)
  int threads = 1;                    ///< final-merge parallelism
};

template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<T> sample_sort(sim::Comm& comm, std::vector<T> data,
                           const SampleSortConfig& cfg = {}, KeyFn kf = {}) {
  using K = KeyType<KeyFn, T>;
  PhaseLedger& ledger = comm.ledger();
  {
    ScopedPhase phase(&ledger, Phase::kOther);
    seq_sort<T, KeyFn>(data, /*stable=*/false, kf);
  }
  const int p = comm.size();
  if (p <= 1) return data;

  std::vector<std::size_t> bounds(static_cast<std::size_t>(p) + 1, 0);
  bounds[static_cast<std::size_t>(p)] = data.size();
  {
    ScopedPhase phase(&ledger, Phase::kPivotSelection);
    const auto samples = sample_local_pivots<T, KeyFn>(
        data, static_cast<std::size_t>(p - 1), kf);
    // Gather the p(p-1) samples everywhere, sort, select at stride p.
    auto pool = comm.allgatherv<K>(samples.keys);
    std::sort(pool.begin(), pool.end());
    std::vector<K> pivots(static_cast<std::size_t>(p - 1));
    for (std::size_t t = 0; t + 1 < static_cast<std::size_t>(p); ++t) {
      pivots[t] = pool[(t + 1) * static_cast<std::size_t>(p) - 1];
    }
    // Plain partition: everything <= pivot[d] below boundary d+1.
    auto less_key = [&kf](const K& k, const T& e) { return k < kf(e); };
    for (std::size_t d = 0; d + 1 < static_cast<std::size_t>(p); ++d) {
      bounds[d + 1] = static_cast<std::size_t>(
          std::upper_bound(data.begin(), data.end(), pivots[d], less_key) -
          data.begin());
    }
  }

  ExchangePlan plan;
  std::vector<T> recv;
  {
    ScopedPhase phase(&ledger, Phase::kExchange);
    plan = plan_exchange(comm, bounds, cfg.mem_limit_records);
    recv = sync_exchange<T>(comm, data, plan);
  }
  {
    ScopedPhase phase(&ledger, Phase::kLocalOrdering);
    return merge_all<T, KeyFn>(std::move(recv), plan.rcounts, plan.rdispls,
                               /*stable=*/false, cfg.threads, kf);
  }
}

}  // namespace sdss::baselines
