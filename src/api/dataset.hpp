// Dataset<T>: the downstream-facing convenience layer over sds_sort.
//
// The paper's motivation (Section 1) is data services — SciDB, the
// Scientific Data Services framework, BD-CATS — that sort records in
// parallel to gain access locality and then run range/order-based analyses.
// This header packages that usage: a distributed collection with
// sort-by-key, order statistics (quantiles, top-k, global index lookup),
// value histograms and range extraction, all built on the library's
// primitives. Every method is collective over the owning communicator.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sim/comm.hpp"
#include "sortcore/key.hpp"

namespace sdss {

template <typename T>
class Dataset {
 public:
  /// Wrap this rank's shard of a distributed collection.
  Dataset(sim::Comm& comm, std::vector<T> shard)
      : comm_(&comm), shard_(std::move(shard)) {}

  sim::Comm& comm() const { return *comm_; }
  const std::vector<T>& shard() const { return shard_; }
  std::vector<T>&& take_shard() && { return std::move(shard_); }
  std::size_t local_count() const { return shard_.size(); }

  /// Collective: total records across ranks.
  std::uint64_t global_count() const {
    return comm_->allreduce<std::uint64_t>(
        static_cast<std::uint64_t>(shard_.size()),
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
  }

  /// Collective: globally sort by kf(record); returns the sorted dataset
  /// (this rank holds the rank()-th key range). The source dataset is
  /// consumed.
  template <KeyFunction<T> KeyFn = IdentityKey>
  Dataset sorted_by(KeyFn kf = {}, const Config& cfg = {}) && {
    auto out = sds_sort<T, KeyFn>(*comm_, std::move(shard_), cfg, kf);
    Dataset d(*comm_, std::move(out));
    d.sorted_ = true;
    return d;
  }

  /// Whether this dataset was produced by sorted_by (order-dependent
  /// queries below require it).
  bool is_sorted() const { return sorted_; }

  /// Collective: the record at global index `idx` of the sorted order
  /// (0-based), or nullopt if idx is out of range. Requires is_sorted().
  std::optional<T> at_global_index(std::uint64_t idx) const {
    require_sorted();
    const auto counts =
        comm_->allgather<std::uint64_t>(static_cast<std::uint64_t>(
            shard_.size()));
    std::uint64_t before = 0;
    int owner = -1;
    for (int r = 0; r < comm_->size(); ++r) {
      const std::uint64_t c = counts[static_cast<std::size_t>(r)];
      if (idx < before + c) {
        owner = r;
        break;
      }
      before += c;
    }
    std::uint8_t found = owner >= 0 ? 1 : 0;
    T value{};
    if (owner == comm_->rank()) {
      value = shard_[static_cast<std::size_t>(idx - before)];
    }
    if (found != 0u) {
      comm_->bcast_value(value, owner);
    }
    // Everyone agrees on found-ness (counts are global knowledge).
    return found != 0u ? std::optional<T>(value) : std::nullopt;
  }

  /// Collective: exact q-quantiles of the sorted order (nearest-rank), one
  /// record per q in [0, 1]. Requires is_sorted().
  std::vector<T> quantiles(std::span<const double> qs) const {
    require_sorted();
    const std::uint64_t n = global_count();
    std::vector<T> out;
    out.reserve(qs.size());
    for (double q : qs) {
      if (n == 0) break;
      q = std::clamp(q, 0.0, 1.0);
      auto rank_idx = static_cast<std::uint64_t>(
          q * static_cast<double>(n - 1) + 0.5);
      if (rank_idx >= n) rank_idx = n - 1;
      auto v = at_global_index(rank_idx);
      if (v.has_value()) out.push_back(*v);
    }
    return out;
  }

  /// Collective: the k records with the largest keys, gathered onto every
  /// rank in descending key order. Requires is_sorted().
  std::vector<T> top_k(std::size_t k) const {
    require_sorted();
    const auto counts = comm_->allgather<std::uint64_t>(
        static_cast<std::uint64_t>(shard_.size()));
    // My share: walk ranks from the top.
    std::uint64_t remaining = k;
    std::uint64_t my_take = 0;
    for (int r = comm_->size() - 1; r >= 0 && remaining > 0; --r) {
      const std::uint64_t here =
          std::min<std::uint64_t>(remaining, counts[static_cast<std::size_t>(r)]);
      if (r == comm_->rank()) my_take = here;
      remaining -= here;
    }
    std::vector<T> mine(shard_.end() - static_cast<std::ptrdiff_t>(my_take),
                        shard_.end());
    auto all = comm_->allgatherv<T>(mine);  // ascending, rank order
    std::reverse(all.begin(), all.end());
    return all;
  }

  /// Collective: this rank's records with keys in [lo, hi), concatenated
  /// over ranks in order (each rank returns only its own slice). Requires
  /// is_sorted(); O(log n) locally.
  template <KeyFunction<T> KeyFn = IdentityKey>
  std::span<const T> local_key_range(const KeyType<KeyFn, T>& lo,
                                     const KeyType<KeyFn, T>& hi,
                                     KeyFn kf = {}) const {
    require_sorted();
    using K = KeyType<KeyFn, T>;
    auto key_less = [&kf](const T& e, const K& k) { return kf(e) < k; };
    const auto b = std::lower_bound(shard_.begin(), shard_.end(), lo, key_less);
    const auto e = std::lower_bound(shard_.begin(), shard_.end(), hi, key_less);
    return std::span<const T>(shard_.data() + (b - shard_.begin()),
                              static_cast<std::size_t>(e - b));
  }

  /// Collective: global key histogram over [lo, hi) with `buckets` equal
  /// bins (keys outside are clamped into the edge bins). Works on sorted or
  /// unsorted data.
  template <KeyFunction<T> KeyFn = IdentityKey>
  std::vector<std::uint64_t> key_histogram(double lo, double hi,
                                           std::size_t buckets,
                                           KeyFn kf = {}) const {
    std::vector<std::uint64_t> local(buckets, 0);
    const double width = (hi - lo) / static_cast<double>(buckets);
    for (const T& v : shard_) {
      const double k = static_cast<double>(kf(v));
      auto b = width > 0 ? static_cast<std::ptrdiff_t>((k - lo) / width)
                         : std::ptrdiff_t{0};
      if (b < 0) b = 0;
      if (b >= static_cast<std::ptrdiff_t>(buckets)) {
        b = static_cast<std::ptrdiff_t>(buckets) - 1;
      }
      ++local[static_cast<std::size_t>(b)];
    }
    return comm_->allreduce_vec<std::uint64_t>(
        local, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  }

  /// Collective: global min/max keys, or nullopt when empty.
  template <KeyFunction<T> KeyFn = IdentityKey>
  std::optional<std::pair<KeyType<KeyFn, T>, KeyType<KeyFn, T>>> key_extrema(
      KeyFn kf = {}) const {
    using K = KeyType<KeyFn, T>;
    struct Agg {
      K min;
      K max;
      std::uint8_t has;
    };
    Agg mine{};
    mine.has = shard_.empty() ? 0 : 1;
    if (mine.has != 0u) {
      auto [mn, mx] = std::minmax_element(shard_.begin(), shard_.end(),
                                          by_key(kf));
      mine.min = kf(*mn);
      mine.max = kf(*mx);
    }
    const Agg agg = comm_->allreduce<Agg>(mine, [](const Agg& a, const Agg& b) {
      if (a.has == 0u) return b;
      if (b.has == 0u) return a;
      Agg out;
      out.has = 1;
      out.min = b.min < a.min ? b.min : a.min;
      out.max = a.max < b.max ? b.max : a.max;
      return out;
    });
    if (agg.has == 0u) return std::nullopt;
    return std::make_pair(agg.min, agg.max);
  }

  /// Collective: RDFA of the current shard sizes.
  double load_rdfa() const {
    return measure_load_balance(*comm_, shard_.size()).rdfa;
  }

  /// Collective: verify global sortedness by kf.
  template <KeyFunction<T> KeyFn = IdentityKey>
  bool verify_sorted(KeyFn kf = {}) const {
    return is_globally_sorted<T, KeyFn>(*comm_, shard_, kf);
  }

 private:
  void require_sorted() const {
    if (!sorted_) {
      throw Error("Dataset: order-dependent query on an unsorted dataset");
    }
  }

  sim::Comm* comm_;
  std::vector<T> shard_;
  bool sorted_ = false;
};

}  // namespace sdss
