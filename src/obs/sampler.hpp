// Live-gauge sampler: the data side of the scheduler-driven sampler fiber.
//
// The sim runtime runs one service fiber (sim/cluster.cpp) that wakes on a
// fixed `sleep_for` tick, aggregates every registered gauge across ranks
// with relaxed loads (safe concurrently with the single-writer rank
// fibers), and pushes the vector into a bounded ring here. The ring is the
// flight recorder's "last seconds of telemetry before the crash": when a
// run fails, the most recent samples ship in the post-mortem bundle.
//
// Determinism contract (documented in docs/OBSERVABILITY.md): these live
// samples are taken on a *wall-clock* tick, so their values depend on the
// worker interleaving — they feed ONLY the flight-recorder bundle, never
// the telemetry report. The report's `metrics.series` object instead
// carries the deterministic progress series that rank fibers record at
// logical checkpoints (obs::series_mark), which IS byte-identical across
// scheduler worker counts and is gated as such.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace sdss::obs {

/// One live snapshot: every watched gauge's cross-rank max, in ids() order.
struct LiveSample {
  std::uint64_t seq = 0;   ///< monotone sample index (ring may have dropped
                           ///< earlier ones)
  std::uint64_t t_ns = 0;  ///< wall ns since the sampler started
  std::vector<std::uint64_t> values;
};

class LiveSampler {
 public:
  /// Arm against `reg`: watch every gauge registered at this point, keep at
  /// most `capacity` samples (oldest dropped first). Call before the run.
  void configure(const MetricsRegistry* reg, std::size_t capacity);

  bool enabled() const { return reg_ != nullptr; }

  /// Take one sample (relaxed aggregate reads). Called only by the sampler
  /// service fiber — single writer, like a rank's metric block.
  void take(std::uint64_t t_ns);

  /// Names of the watched gauges, in LiveSample::values order.
  const std::vector<std::string>& names() const { return names_; }
  /// Ring contents in seq order, oldest first. Read after the run.
  std::vector<LiveSample> samples() const;
  std::uint64_t taken() const { return seq_; }

 private:
  const MetricsRegistry* reg_ = nullptr;
  std::vector<MetricId> ids_;
  std::vector<std::string> names_;
  std::size_t capacity_ = 0;
  std::deque<LiveSample> ring_;
  std::uint64_t seq_ = 0;
};

}  // namespace sdss::obs
