// Live metrics registry: per-rank, single-writer counters, gauges and
// log-bucketed histograms, cheap enough to leave always on.
//
// This is the fifth observability layer (docs/OBSERVABILITY.md): unlike the
// post-run report/trace layers it is readable *while the run is in flight*
// (the sampler fiber in obs/sampler.hpp and the flight recorder in
// obs/flight_recorder.hpp both read it), which is what the ROADMAP's
// sort-as-a-service item needs for admission control and backpressure.
//
// Write discipline mirrors trace/recorder.hpp: each rank owns one
// RankMetrics block and only that rank's fiber writes it — the scheduler
// binds the block to whichever worker resumes the fiber — so writes never
// contend. Unlike trace lanes, the cells are relaxed std::atomic, because
// the sampler fiber reads gauges concurrently with the owning writer
// (trace lanes are only read after the workers join). Relaxed is enough:
// each cell is an independent monotone counter or last-value gauge, no
// cross-cell invariant is read mid-run, and the post-join full snapshot is
// ordered by the scheduler's fiber handoff plus the worker joins exactly
// like op_counts.
//
// Names are interned (static string literals) and registered once into a
// process-global table; instrumentation sites hold the returned MetricId in
// a namespace-scope constant so steady-state emission never touches the
// registration lock.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sdss::telemetry {
class Json;
}

namespace sdss::obs {

enum class MetricKind : std::uint8_t {
  kCounter,    ///< monotone; snapshot aggregates by SUM over ranks
  kGauge,      ///< last value / high-water; snapshot aggregates by MAX
  kHistogram,  ///< log2-bucketed distribution; snapshot merges buckets
};

enum class MetricUnit : std::uint8_t {
  kCount,
  kBytes,
  kRecords,
  kNanos,  ///< timing — machine-dependent, never diffed on value
};

const char* metric_kind_name(MetricKind k);
const char* metric_unit_name(MetricUnit u);
MetricKind metric_kind_from_name(const std::string& s);
MetricUnit metric_unit_from_name(const std::string& s);

/// Index into the process-global definition table. Stable for the life of
/// the process (the table is append-only).
using MetricId = std::uint32_t;

/// Fixed per-rank slot capacity. A hard cap keeps the per-rank block a flat
/// array (no growth, no locking on the write path); registration past it
/// throws. 64 is ~4x the current instrumentation surface.
inline constexpr std::size_t kMaxMetrics = 64;

/// Histogram bucket b holds values whose bit_width is b: bucket 0 is the
/// value 0, bucket b >= 1 spans [2^(b-1), 2^b - 1]. 65 buckets cover the
/// full uint64 range, so p50/p95/p99/max are derivable from the buckets
/// alone (to within a 2x bucket bound).
inline constexpr std::size_t kHistBuckets = 65;

struct MetricDef {
  const char* name = "";  ///< interned: must have static storage duration
  MetricKind kind = MetricKind::kCounter;
  MetricUnit unit = MetricUnit::kCount;
};

/// Register (or re-find) a metric by interned name. Idempotent: a second
/// registration of the same name returns the existing id (kind/unit must
/// match — a mismatch throws, it is a programming error). Thread-safe;
/// called from namespace-scope initializers at instrumentation sites.
MetricId register_metric(const char* name, MetricKind kind, MetricUnit unit);

/// Snapshot of the global definition table (ids 0..size-1, in
/// registration order).
std::vector<MetricDef> registered_metrics();

/// One deterministic time-series point: a value a rank recorded at a
/// logical progress checkpoint of its own pipeline. Owner-only storage —
/// see MetricsRegistry below for the determinism contract.
struct SeriesPoint {
  MetricId id = 0;
  std::uint64_t value = 0;
};

/// One rank's metric storage. Scalar/histogram cells are relaxed atomics
/// (single writer, concurrent sampler reads); the series is plain owner-only
/// data, read only after the scheduler workers join.
class RankMetrics {
 public:
  RankMetrics() = default;
  ~RankMetrics();
  RankMetrics(const RankMetrics&) = delete;
  RankMetrics& operator=(const RankMetrics&) = delete;

  struct Hist {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
  };

  /// Counters and gauges, indexed by MetricId.
  std::array<std::atomic<std::uint64_t>, kMaxMetrics> scalars{};
  /// Histogram blocks, lazily allocated by the owning writer on first
  /// record and published with a release store (the sampler acquires).
  std::array<std::atomic<Hist*>, kMaxMetrics> hists{};

  /// Deterministic progress series: append-only by the owning fiber, with
  /// stride-doubling decimation once kMaxSeriesPoints is hit (keep every
  /// other point, double the accept stride) so it stays bounded while the
  /// kept set remains a pure function of the append sequence.
  static constexpr std::size_t kMaxSeriesPoints = 512;
  std::vector<SeriesPoint> series;
  std::uint64_t series_seq = 0;     ///< total marks offered (pre-decimation)
  std::uint64_t series_stride = 1;  ///< current accept stride

  Hist* hist_for_write(MetricId id);  ///< owner only: allocate-or-get
  void series_append(MetricId id, std::uint64_t value);  ///< owner only
};

// --- aggregated snapshot ---------------------------------------------------

struct ScalarSnapshot {
  std::string name;
  MetricUnit unit = MetricUnit::kCount;
  std::uint64_t value = 0;  ///< counters: sum over ranks; gauges: max
};

struct HistogramSnapshot {
  std::string name;
  MetricUnit unit = MetricUnit::kCount;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistBuckets> buckets{};

  /// Upper bound of the bucket holding quantile q (0 < q <= 1): the
  /// smallest v such that at least q*count recorded values are <= bucket
  /// upper bound. 0 when empty.
  std::uint64_t percentile(double q) const;
  std::uint64_t max_bound() const;  ///< upper bound of highest hit bucket
};

struct SeriesSnapshot {
  std::string name;
  MetricUnit unit = MetricUnit::kCount;
  /// One row per rank: that rank's kept progress samples, in program order.
  /// Deterministic for a fixed seed and workload — byte-identical across
  /// scheduler worker counts, which report_diff and bench_metrics gate.
  std::vector<std::vector<std::uint64_t>> per_rank;
};

/// The aggregated, immutable result of one run's registry. Entries with no
/// recorded activity are dropped, so presence tracks what the run actually
/// did rather than which code paths happened to register metrics.
struct MetricsSnapshot {
  std::vector<ScalarSnapshot> counters;
  std::vector<ScalarSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<SeriesSnapshot> series;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           series.empty();
  }
};

/// Stable JSON form (the report's `metrics` object and the flight
/// recorder's snapshot section share it). Buckets serialize sparsely as
/// [bucket, count] pairs.
telemetry::Json to_json(const MetricsSnapshot& s);
MetricsSnapshot metrics_snapshot_from_json(const telemetry::Json& j);

/// Owns the per-rank blocks for one cluster run. reset() arms it;
/// snapshot() aggregates after the scheduler workers have joined.
class MetricsRegistry {
 public:
  /// Arm with one block per rank; discards any previous run's data.
  void reset(int num_ranks);

  bool enabled() const { return !ranks_.empty(); }
  int num_ranks() const { return static_cast<int>(ranks_.size()); }
  RankMetrics* rank(std::size_t index) { return ranks_[index].get(); }
  const RankMetrics* rank(std::size_t index) const {
    return ranks_[index].get();
  }

  /// Mid-run aggregate of one scalar metric across all ranks (relaxed
  /// loads only — safe concurrently with the writers). Counters sum,
  /// gauges max, matching snapshot() aggregation.
  std::uint64_t live_scalar(MetricId id) const;

  /// Full post-join aggregate, including the owner-only series. Call only
  /// after the scheduler workers have joined.
  MetricsSnapshot snapshot() const;

 private:
  std::vector<std::unique_ptr<RankMetrics>> ranks_;
};

// --- thread binding + emission (mirrors trace/recorder.hpp) ---------------

namespace detail {
struct ThreadMetrics {
  RankMetrics* rank = nullptr;
};
extern thread_local ThreadMetrics t_metrics;
}  // namespace detail

/// True iff the calling thread is bound to a rank's block. Out-of-line and
/// noinline for the same reason as trace::active(): instrumented code runs
/// on fibers that migrate between scheduler workers, and an inlined TLS
/// access could be cached across a yield, writing another rank's block.
bool active();

/// Bind/unbind the calling thread to rank `index` of `reg`. The rank
/// scheduler rebinds on every fiber resume, exactly like the trace lane.
void bind_thread(MetricsRegistry* reg, std::size_t index);
void unbind_thread();

/// Emit helpers. All require active(); callers gate with `if (active())` so
/// a metrics-off run pays one call, TLS load, and branch per site.
void counter_add(MetricId id, std::uint64_t delta);
void gauge_set(MetricId id, std::uint64_t value);
void gauge_max(MetricId id, std::uint64_t value);  ///< high-water update
void hist_record(MetricId id, std::uint64_t value);
/// Append one deterministic progress point to the calling rank's series.
void series_mark(MetricId id, std::uint64_t value);

}  // namespace sdss::obs
