#include "obs/metrics.hpp"

#include <bit>
#include <cstring>
#include <mutex>

#include "telemetry/json.hpp"
#include "util/error.hpp"

namespace sdss::obs {

namespace {

/// Process-global definition table. Append-only; guarded by its own mutex
/// (touched only at registration, never on the emit path).
struct GlobalTable {
  std::mutex mu;
  std::vector<MetricDef> defs;
};

GlobalTable& table() {
  static GlobalTable t;
  return t;
}

/// Bucket of value v: bit_width(v), so bucket 0 is exactly v == 0 and
/// bucket b >= 1 spans [2^(b-1), 2^b - 1].
inline std::size_t bucket_of(std::uint64_t v) {
  return static_cast<std::size_t>(std::bit_width(v));
}

/// Upper bound of bucket b (the value percentile() reports).
inline std::uint64_t bucket_upper(std::size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

}  // namespace

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

const char* metric_unit_name(MetricUnit u) {
  switch (u) {
    case MetricUnit::kCount: return "count";
    case MetricUnit::kBytes: return "bytes";
    case MetricUnit::kRecords: return "records";
    case MetricUnit::kNanos: return "nanos";
  }
  return "?";
}

MetricKind metric_kind_from_name(const std::string& s) {
  if (s == "gauge") return MetricKind::kGauge;
  if (s == "histogram") return MetricKind::kHistogram;
  return MetricKind::kCounter;
}

MetricUnit metric_unit_from_name(const std::string& s) {
  if (s == "bytes") return MetricUnit::kBytes;
  if (s == "records") return MetricUnit::kRecords;
  if (s == "nanos") return MetricUnit::kNanos;
  return MetricUnit::kCount;
}

MetricId register_metric(const char* name, MetricKind kind, MetricUnit unit) {
  GlobalTable& t = table();
  std::lock_guard<std::mutex> lk(t.mu);
  for (std::size_t i = 0; i < t.defs.size(); ++i) {
    if (std::strcmp(t.defs[i].name, name) == 0) {
      if (t.defs[i].kind != kind || t.defs[i].unit != unit) {
        throw Error(std::string("obs: metric '") + name +
                    "' re-registered with a different kind/unit");
      }
      return static_cast<MetricId>(i);
    }
  }
  if (t.defs.size() >= kMaxMetrics) {
    throw Error("obs: metric capacity exceeded (kMaxMetrics)");
  }
  t.defs.push_back(MetricDef{name, kind, unit});
  return static_cast<MetricId>(t.defs.size() - 1);
}

std::vector<MetricDef> registered_metrics() {
  GlobalTable& t = table();
  std::lock_guard<std::mutex> lk(t.mu);
  return t.defs;
}

RankMetrics::~RankMetrics() {
  for (auto& h : hists) {
    delete h.load(std::memory_order_relaxed);
  }
}

RankMetrics::Hist* RankMetrics::hist_for_write(MetricId id) {
  Hist* h = hists[id].load(std::memory_order_relaxed);
  if (h == nullptr) {
    h = new Hist();
    // Release-publish so a sampler that acquires the pointer sees the
    // zero-initialized cells. Single writer: no CAS needed.
    hists[id].store(h, std::memory_order_release);
  }
  return h;
}

void RankMetrics::series_append(MetricId id, std::uint64_t value) {
  // Deterministic decimation: accept every series_stride-th offered mark;
  // when the buffer fills, keep every other kept point and double the
  // stride. The kept set is a pure function of the offered sequence, so it
  // is byte-identical across scheduler worker counts.
  const std::uint64_t seq = series_seq++;
  if (seq % series_stride != 0) return;
  if (series.size() == kMaxSeriesPoints) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < series.size(); r += 2) series[w++] = series[r];
    series.resize(w);
    series_stride *= 2;
    if (seq % series_stride != 0) return;
  }
  series.push_back(SeriesPoint{id, value});
}

std::uint64_t HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= target) return bucket_upper(b);
  }
  return max_bound();
}

std::uint64_t HistogramSnapshot::max_bound() const {
  for (std::size_t b = kHistBuckets; b-- > 0;) {
    if (buckets[b] != 0) return bucket_upper(b);
  }
  return 0;
}

void MetricsRegistry::reset(int num_ranks) {
  ranks_.clear();
  ranks_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    ranks_.push_back(std::make_unique<RankMetrics>());
  }
}

std::uint64_t MetricsRegistry::live_scalar(MetricId id) const {
  const std::vector<MetricDef> defs = registered_metrics();
  const bool take_max =
      id < defs.size() && defs[id].kind == MetricKind::kGauge;
  std::uint64_t agg = 0;
  for (const auto& r : ranks_) {
    const std::uint64_t v = r->scalars[id].load(std::memory_order_relaxed);
    if (take_max) {
      if (v > agg) agg = v;
    } else {
      agg += v;
    }
  }
  return agg;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  const std::vector<MetricDef> defs = registered_metrics();
  for (std::size_t id = 0; id < defs.size(); ++id) {
    const MetricDef& d = defs[id];
    switch (d.kind) {
      case MetricKind::kCounter: {
        std::uint64_t sum = 0;
        for (const auto& r : ranks_) {
          sum += r->scalars[id].load(std::memory_order_relaxed);
        }
        if (sum != 0) {
          out.counters.push_back(ScalarSnapshot{d.name, d.unit, sum});
        }
        break;
      }
      case MetricKind::kGauge: {
        std::uint64_t mx = 0;
        for (const auto& r : ranks_) {
          const std::uint64_t v =
              r->scalars[id].load(std::memory_order_relaxed);
          if (v > mx) mx = v;
        }
        if (mx != 0) {
          out.gauges.push_back(ScalarSnapshot{d.name, d.unit, mx});
        }
        break;
      }
      case MetricKind::kHistogram: {
        HistogramSnapshot h;
        h.name = d.name;
        h.unit = d.unit;
        for (const auto& r : ranks_) {
          const RankMetrics::Hist* src =
              r->hists[id].load(std::memory_order_acquire);
          if (src == nullptr) continue;
          h.count += src->count.load(std::memory_order_relaxed);
          h.sum += src->sum.load(std::memory_order_relaxed);
          for (std::size_t b = 0; b < kHistBuckets; ++b) {
            h.buckets[b] += src->buckets[b].load(std::memory_order_relaxed);
          }
        }
        if (h.count != 0) out.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  // Series: one snapshot entry per metric that any rank marked, rows in
  // rank order (missing ranks get empty rows so positions stay stable).
  for (std::size_t id = 0; id < defs.size(); ++id) {
    bool any = false;
    for (const auto& r : ranks_) {
      for (const SeriesPoint& p : r->series) {
        if (p.id == id) {
          any = true;
          break;
        }
      }
      if (any) break;
    }
    if (!any) continue;
    SeriesSnapshot s;
    s.name = defs[id].name;
    s.unit = defs[id].unit;
    s.per_rank.reserve(ranks_.size());
    for (const auto& r : ranks_) {
      std::vector<std::uint64_t> row;
      for (const SeriesPoint& p : r->series) {
        if (p.id == id) row.push_back(p.value);
      }
      s.per_rank.push_back(std::move(row));
    }
    out.series.push_back(std::move(s));
  }
  return out;
}

// --- JSON ------------------------------------------------------------------

namespace {

telemetry::Json scalar_to_json(const ScalarSnapshot& s) {
  telemetry::Json e = telemetry::Json::object();
  e.set("name", s.name);
  e.set("unit", std::string(metric_unit_name(s.unit)));
  e.set("value", s.value);
  return e;
}

ScalarSnapshot scalar_from_json(const telemetry::Json& j) {
  ScalarSnapshot s;
  s.name = j.at("name").string_value();
  s.unit = metric_unit_from_name(j.at("unit").string_value());
  s.value = j.at("value").u64_or();
  return s;
}

}  // namespace

telemetry::Json to_json(const MetricsSnapshot& s) {
  using telemetry::Json;
  Json j = Json::object();
  Json counters = Json::array();
  for (const ScalarSnapshot& c : s.counters) {
    counters.push_back(scalar_to_json(c));
  }
  j.set("counters", std::move(counters));
  Json gauges = Json::array();
  for (const ScalarSnapshot& g : s.gauges) gauges.push_back(scalar_to_json(g));
  j.set("gauges", std::move(gauges));
  Json hists = Json::array();
  for (const HistogramSnapshot& h : s.histograms) {
    Json e = Json::object();
    e.set("name", h.name);
    e.set("unit", std::string(metric_unit_name(h.unit)));
    e.set("count", h.count);
    e.set("sum", h.sum);
    // Sparse [bucket, count] pairs: most of the 65 buckets are empty.
    Json buckets = Json::array();
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      Json pair = Json::array();
      pair.push_back(static_cast<std::uint64_t>(b));
      pair.push_back(h.buckets[b]);
      buckets.push_back(std::move(pair));
    }
    e.set("buckets", std::move(buckets));
    hists.push_back(std::move(e));
  }
  j.set("histograms", std::move(hists));
  Json series = Json::array();
  for (const SeriesSnapshot& ss : s.series) {
    Json e = Json::object();
    e.set("name", ss.name);
    e.set("unit", std::string(metric_unit_name(ss.unit)));
    Json per_rank = Json::array();
    for (const auto& row : ss.per_rank) {
      Json r = Json::array();
      for (std::uint64_t v : row) r.push_back(v);
      per_rank.push_back(std::move(r));
    }
    e.set("per_rank", std::move(per_rank));
    series.push_back(std::move(e));
  }
  j.set("series", std::move(series));
  return j;
}

MetricsSnapshot metrics_snapshot_from_json(const telemetry::Json& j) {
  MetricsSnapshot s;
  for (const telemetry::Json& e : j.at("counters").items()) {
    s.counters.push_back(scalar_from_json(e));
  }
  for (const telemetry::Json& e : j.at("gauges").items()) {
    s.gauges.push_back(scalar_from_json(e));
  }
  for (const telemetry::Json& e : j.at("histograms").items()) {
    HistogramSnapshot h;
    h.name = e.at("name").string_value();
    h.unit = metric_unit_from_name(e.at("unit").string_value());
    h.count = e.at("count").u64_or();
    h.sum = e.at("sum").u64_or();
    for (const telemetry::Json& pair : e.at("buckets").items()) {
      const auto& cells = pair.items();
      if (cells.size() < 2) continue;
      const std::size_t b = static_cast<std::size_t>(cells[0].u64_or());
      if (b < kHistBuckets) h.buckets[b] = cells[1].u64_or();
    }
    s.histograms.push_back(std::move(h));
  }
  for (const telemetry::Json& e : j.at("series").items()) {
    SeriesSnapshot ss;
    ss.name = e.at("name").string_value();
    ss.unit = metric_unit_from_name(e.at("unit").string_value());
    for (const telemetry::Json& row : e.at("per_rank").items()) {
      std::vector<std::uint64_t> r;
      r.reserve(row.items().size());
      for (const telemetry::Json& v : row.items()) r.push_back(v.u64_or());
      ss.per_rank.push_back(std::move(r));
    }
    s.series.push_back(std::move(ss));
  }
  return s;
}

// --- thread binding + emission ---------------------------------------------

namespace detail {
thread_local ThreadMetrics t_metrics;
}  // namespace detail

// noinline: see the header comment on active() — callers run on migrating
// fibers, and the TLS address must be re-derived on every call (same
// discipline as trace::active()).
[[gnu::noinline]] bool active() {
  return detail::t_metrics.rank != nullptr;
}

void bind_thread(MetricsRegistry* reg, std::size_t index) {
  detail::t_metrics.rank = reg->rank(index);
}

void unbind_thread() { detail::t_metrics = detail::ThreadMetrics{}; }

[[gnu::noinline]] void counter_add(MetricId id, std::uint64_t delta) {
  detail::t_metrics.rank->scalars[id].fetch_add(delta,
                                                std::memory_order_relaxed);
}

[[gnu::noinline]] void gauge_set(MetricId id, std::uint64_t value) {
  detail::t_metrics.rank->scalars[id].store(value, std::memory_order_relaxed);
}

[[gnu::noinline]] void gauge_max(MetricId id, std::uint64_t value) {
  std::atomic<std::uint64_t>& cell = detail::t_metrics.rank->scalars[id];
  // Single writer: a plain read-compare-store is race-free on this cell.
  if (value > cell.load(std::memory_order_relaxed)) {
    cell.store(value, std::memory_order_relaxed);
  }
}

[[gnu::noinline]] void hist_record(MetricId id, std::uint64_t value) {
  RankMetrics* r = detail::t_metrics.rank;
  RankMetrics::Hist* h = r->hist_for_write(id);
  h->count.fetch_add(1, std::memory_order_relaxed);
  h->sum.fetch_add(value, std::memory_order_relaxed);
  h->buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

[[gnu::noinline]] void series_mark(MetricId id, std::uint64_t value) {
  detail::t_metrics.rank->series_append(id, value);
}

}  // namespace sdss::obs
