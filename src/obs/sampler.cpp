#include "obs/sampler.hpp"

namespace sdss::obs {

void LiveSampler::configure(const MetricsRegistry* reg, std::size_t capacity) {
  reg_ = reg;
  capacity_ = capacity;
  ids_.clear();
  names_.clear();
  ring_.clear();
  seq_ = 0;
  const std::vector<MetricDef> defs = registered_metrics();
  for (std::size_t id = 0; id < defs.size(); ++id) {
    if (defs[id].kind != MetricKind::kGauge) continue;
    ids_.push_back(static_cast<MetricId>(id));
    names_.emplace_back(defs[id].name);
  }
}

void LiveSampler::take(std::uint64_t t_ns) {
  if (reg_ == nullptr || capacity_ == 0) return;
  LiveSample s;
  s.seq = seq_++;
  s.t_ns = t_ns;
  s.values.reserve(ids_.size());
  for (const MetricId id : ids_) {
    s.values.push_back(reg_->live_scalar(id));
  }
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(std::move(s));
}

std::vector<LiveSample> LiveSampler::samples() const {
  return std::vector<LiveSample>(ring_.begin(), ring_.end());
}

}  // namespace sdss::obs
