// Flight recorder: the post-mortem bundle written when a run dies.
//
// All other observability layers are post-run: a run that OOMs, deadlocks
// or hits a spill I/O fault used to leave only an exception string. On any
// classified failure the sim runtime (sim/cluster.cpp) now assembles a
// FlightRecord — what every rank was blocked on when the cluster aborted,
// the tail of every trace lane, the final aggregated metrics snapshot, the
// live-gauge samples leading up to the failure, and the chaos events that
// fired — and writes it as JSON next to the report (ClusterConfig::
// postmortem_path, or the SDSS_POSTMORTEM_DIR environment variable).
// bench/postmortem_analyze.cpp renders a bundle for humans and validates it
// for CI. The structs here are deliberately sim-free (plain strings and
// ints) so the obs layer does not depend on sim/ headers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

namespace sdss::telemetry {
class Json;
}

namespace sdss::obs {

/// Bumped on renames/removals/meaning changes; additions don't bump.
inline constexpr int kFlightRecordSchemaVersion = 1;

/// One rank's blocked-op table entry, snapshotted under the cluster mutex
/// at the moment of the first abort (mirrors sim BlockedOp + finished).
struct BlockedOpRecord {
  int rank = -1;
  std::string op;  ///< "recv", "req_wait", "coll_recv", ... or "running"
  int src = -1;
  int tag = -1;
  int ctx = 0;
  bool has_deadline = false;
  bool finished = false;
};

/// One trace event of a lane tail, stringified (kind/cat names, not enums)
/// so the bundle is self-describing without the trace headers.
struct TraceTailEvent {
  std::uint64_t t_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t value = 0;
  std::uint64_t aux = 0;
  std::string name;
  int peer = -1;
  std::string kind;
  std::string cat;
};

/// One fired chaos event (mirrors sim::FaultEvent without the sim types).
struct ChaosEventRecord {
  std::string kind;
  int rank = -1;
  std::uint64_t op_index = 0;
  double seconds = 0.0;
};

struct FlightRecord {
  int schema_version = kFlightRecordSchemaVersion;

  // Failure classification (sim::failure_class_name vocabulary).
  std::string failure_class;  ///< "oom", "deadlock", "spill-io", ...
  std::string failure_detail;
  std::string error;  ///< what() of the primary exception
  int failed_rank = -1;

  /// The watchdog's blocked-op table at the first abort, one entry per
  /// rank.
  std::vector<BlockedOpRecord> blocked;

  /// Per-lane trace tails: lanes 0..R-1 are ranks, lane R the cluster
  /// runtime (watchdog). At most kTraceTailEvents per lane.
  static constexpr std::size_t kTraceTailEvents = 64;
  std::vector<std::vector<TraceTailEvent>> trace_tails;

  /// Final aggregated metrics (post-join full snapshot).
  MetricsSnapshot metrics;

  /// Live-gauge ring from the sampler fiber: the last samples before the
  /// failure. `sampled_gauges` names the columns of each sample's values.
  std::vector<std::string> sampled_gauges;
  std::vector<LiveSample> live_samples;

  std::vector<ChaosEventRecord> chaos_events;
};

telemetry::Json to_json(const FlightRecord& r);
FlightRecord flight_record_from_json(const telemetry::Json& j);

/// Write/read one bundle file. load throws sdss::Error on malformed JSON
/// or an unsupported schema version.
void write_flight_record(const std::string& path, const FlightRecord& r);
FlightRecord load_flight_record(const std::string& path);

}  // namespace sdss::obs
