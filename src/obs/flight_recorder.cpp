#include "obs/flight_recorder.hpp"

#include <fstream>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/error.hpp"

namespace sdss::obs {

using telemetry::Json;

Json to_json(const FlightRecord& r) {
  Json j = Json::object();
  j.set("schema_version", r.schema_version);
  Json failure = Json::object();
  failure.set("class", r.failure_class);
  failure.set("detail", r.failure_detail);
  failure.set("error", r.error);
  failure.set("failed_rank", r.failed_rank);
  j.set("failure", std::move(failure));

  Json blocked = Json::array();
  for (const BlockedOpRecord& b : r.blocked) {
    Json e = Json::object();
    e.set("rank", b.rank);
    e.set("op", b.op);
    e.set("src", b.src);
    e.set("tag", b.tag);
    e.set("ctx", b.ctx);
    e.set("has_deadline", b.has_deadline);
    e.set("finished", b.finished);
    blocked.push_back(std::move(e));
  }
  j.set("blocked", std::move(blocked));

  Json tails = Json::array();
  for (const auto& lane : r.trace_tails) {
    Json l = Json::array();
    for (const TraceTailEvent& ev : lane) {
      Json e = Json::object();
      e.set("t_ns", ev.t_ns);
      e.set("dur_ns", ev.dur_ns);
      e.set("value", ev.value);
      e.set("aux", ev.aux);
      e.set("name", ev.name);
      e.set("peer", ev.peer);
      e.set("kind", ev.kind);
      e.set("cat", ev.cat);
      l.push_back(std::move(e));
    }
    tails.push_back(std::move(l));
  }
  j.set("trace_tails", std::move(tails));

  j.set("metrics", obs::to_json(r.metrics));

  Json sampler = Json::object();
  Json gauges = Json::array();
  for (const std::string& g : r.sampled_gauges) gauges.push_back(g);
  sampler.set("gauges", std::move(gauges));
  Json samples = Json::array();
  for (const LiveSample& s : r.live_samples) {
    Json e = Json::object();
    e.set("seq", s.seq);
    e.set("t_ns", s.t_ns);
    Json values = Json::array();
    for (std::uint64_t v : s.values) values.push_back(v);
    e.set("values", std::move(values));
    samples.push_back(std::move(e));
  }
  sampler.set("samples", std::move(samples));
  j.set("sampler", std::move(sampler));

  Json chaos = Json::array();
  for (const ChaosEventRecord& c : r.chaos_events) {
    Json e = Json::object();
    e.set("kind", c.kind);
    e.set("rank", c.rank);
    e.set("op_index", c.op_index);
    e.set("seconds", c.seconds);
    chaos.push_back(std::move(e));
  }
  j.set("chaos_events", std::move(chaos));
  return j;
}

FlightRecord flight_record_from_json(const Json& j) {
  FlightRecord r;
  const int version = static_cast<int>(j.at("schema_version").number_or(-1));
  if (version < 1 || version > kFlightRecordSchemaVersion) {
    throw Error("unsupported flight-record schema_version " +
                std::to_string(version));
  }
  r.schema_version = version;
  const Json& failure = j.at("failure");
  r.failure_class = failure.at("class").string_value();
  r.failure_detail = failure.at("detail").string_value();
  r.error = failure.at("error").string_value();
  r.failed_rank = static_cast<int>(failure.at("failed_rank").number_or(-1));

  for (const Json& e : j.at("blocked").items()) {
    BlockedOpRecord b;
    b.rank = static_cast<int>(e.at("rank").number_or(-1));
    b.op = e.at("op").string_value();
    b.src = static_cast<int>(e.at("src").number_or(-1));
    b.tag = static_cast<int>(e.at("tag").number_or(-1));
    b.ctx = static_cast<int>(e.at("ctx").number_or(0));
    b.has_deadline = e.at("has_deadline").bool_or(false);
    b.finished = e.at("finished").bool_or(false);
    r.blocked.push_back(std::move(b));
  }

  for (const Json& lane : j.at("trace_tails").items()) {
    std::vector<TraceTailEvent> l;
    for (const Json& e : lane.items()) {
      TraceTailEvent ev;
      ev.t_ns = e.at("t_ns").u64_or();
      ev.dur_ns = e.at("dur_ns").u64_or();
      ev.value = e.at("value").u64_or();
      ev.aux = e.at("aux").u64_or();
      ev.name = e.at("name").string_value();
      ev.peer = static_cast<int>(e.at("peer").number_or(-1));
      ev.kind = e.at("kind").string_value();
      ev.cat = e.at("cat").string_value();
      l.push_back(std::move(ev));
    }
    r.trace_tails.push_back(std::move(l));
  }

  r.metrics = metrics_snapshot_from_json(j.at("metrics"));

  const Json& sampler = j.at("sampler");
  for (const Json& g : sampler.at("gauges").items()) {
    r.sampled_gauges.push_back(g.string_value());
  }
  for (const Json& e : sampler.at("samples").items()) {
    LiveSample s;
    s.seq = e.at("seq").u64_or();
    s.t_ns = e.at("t_ns").u64_or();
    for (const Json& v : e.at("values").items()) {
      s.values.push_back(v.u64_or());
    }
    r.live_samples.push_back(std::move(s));
  }

  for (const Json& e : j.at("chaos_events").items()) {
    ChaosEventRecord c;
    c.kind = e.at("kind").string_value();
    c.rank = static_cast<int>(e.at("rank").number_or(-1));
    c.op_index = e.at("op_index").u64_or();
    c.seconds = e.at("seconds").number_or();
    r.chaos_events.push_back(std::move(c));
  }
  return r;
}

void write_flight_record(const std::string& path, const FlightRecord& r) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write flight record: " + path);
  to_json(r).write(out, 2);
  out << '\n';
}

FlightRecord load_flight_record(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open flight record: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return flight_record_from_json(Json::parse(buf.str()));
}

}  // namespace sdss::obs
