// Synthetic workload generators: uniform, gaussian, partially ordered, and
// per-rank sharding helpers. All deterministic in their seeds.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numbers>
#include <vector>

#include "util/rng.hpp"
#include "workloads/types.hpp"

namespace sdss::workloads {

/// Uniform doubles in [lo, hi) — the paper's Uniform data set.
inline std::vector<double> uniform_doubles(std::size_t n, std::uint64_t seed,
                                           double lo = 0.0, double hi = 1.0) {
  SplitMix64 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = lo + (hi - lo) * rng.next_double();
  return v;
}

/// Uniform 64-bit keys in [0, universe).
inline std::vector<std::uint64_t> uniform_u64(std::size_t n,
                                              std::uint64_t seed,
                                              std::uint64_t universe) {
  SplitMix64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(universe);
  return v;
}

/// Gaussian keys (Box-Muller): a mild, single-mode skew.
inline std::vector<double> gaussian_doubles(std::size_t n, std::uint64_t seed,
                                            double mean = 0.0,
                                            double stddev = 1.0) {
  SplitMix64 rng(seed);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; i += 2) {
    const double u1 = rng.next_double();
    const double u2 = rng.next_double();
    const double r = std::sqrt(-2.0 * std::log(u1 <= 0.0 ? 1e-300 : u1));
    v[i] = mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
    if (i + 1 < n) {
      v[i + 1] = mean + stddev * r * std::sin(2.0 * std::numbers::pi * u2);
    }
  }
  return v;
}

/// Partially ordered data (paper Sections 1/2.7): a sorted sequence broken
/// into `runs` ascending runs, with a `disorder` fraction of elements
/// swapped to random positions.
inline std::vector<std::uint64_t> partially_ordered_u64(std::size_t n,
                                                        std::uint64_t seed,
                                                        std::size_t runs,
                                                        double disorder = 0.0) {
  SplitMix64 rng(seed);
  std::vector<std::uint64_t> v(n);
  if (runs == 0) runs = 1;
  const std::size_t run_len = (n + runs - 1) / runs;
  std::uint64_t base = 0;
  for (std::size_t start = 0; start < n; start += run_len) {
    const std::size_t end = std::min(n, start + run_len);
    std::uint64_t x = rng.next_below(1000);
    for (std::size_t i = start; i < end; ++i) {
      x += rng.next_below(16);
      v[i] = x;
    }
    base += 1;  // runs overlap in value range, so merging is non-trivial
  }
  const auto swaps = static_cast<std::size_t>(disorder * static_cast<double>(n));
  for (std::size_t s = 0; s < swaps; ++s) {
    std::swap(v[rng.next_below(n)], v[rng.next_below(n)]);
  }
  return v;
}

/// Wrap bare keys into provenance-tagged records for stability testing.
template <typename K>
std::vector<Tagged<K>> tag_keys(const std::vector<K>& keys, int rank) {
  std::vector<Tagged<K>> out;
  out.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    out.push_back(Tagged<K>{keys[i], static_cast<std::uint32_t>(rank),
                            static_cast<std::uint32_t>(i)});
  }
  return out;
}

}  // namespace sdss::workloads
