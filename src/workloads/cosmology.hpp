// Synthetic cosmology particles (paper Section 4.2).
//
// BD-CATS sorts GADGET-2 particles by clustering ID; the paper's 2.1 TB set
// has 68G particles with delta = 0.73% on the cluster-ID key. Cluster sizes
// in N-body friend-of-friends catalogs follow a steep power law, so we draw
// cluster IDs from a Zipf distribution calibrated to the paper's delta and
// attach positions clustered around per-ID centers plus Gaussian velocity
// payloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "workloads/types.hpp"

namespace sdss::workloads {

struct CosmologyOptions {
  /// Zipf exponent of the cluster-size distribution.
  double alpha = 0.5;
  /// Number of distinct clusters. The default, with alpha = 0.5, gives
  /// delta ~ 0.73% — the paper's measured replication ratio.
  std::size_t clusters = 4700;
  /// Simulation box size (positions in [0, box)).
  float box = 100.0f;
};

/// Generate n synthetic particles, deterministic in `seed`.
std::vector<Particle> cosmology_particles(std::size_t n, std::uint64_t seed,
                                          const CosmologyOptions& opt = {});

}  // namespace sdss::workloads
