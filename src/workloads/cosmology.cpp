#include "workloads/cosmology.hpp"

#include <cmath>

#include "util/rng.hpp"
#include "workloads/zipf.hpp"

namespace sdss::workloads {

std::vector<Particle> cosmology_particles(std::size_t n, std::uint64_t seed,
                                          const CosmologyOptions& opt) {
  ZipfGenerator cluster_of(opt.alpha, opt.clusters);
  SplitMix64 rng(seed);
  std::vector<Particle> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Particle p;
    p.cluster_id = cluster_of(rng);
    // Cluster center derived deterministically from the ID; particles
    // scatter around it. (A box-muller pair would be prettier physics; a
    // bounded uniform scatter exercises the same sort paths.)
    SplitMix64 center(derive_seed(17, p.cluster_id));
    const float cx = static_cast<float>(center.next_double()) * opt.box;
    const float cy = static_cast<float>(center.next_double()) * opt.box;
    const float cz = static_cast<float>(center.next_double()) * opt.box;
    const auto scatter = [&rng, &opt] {
      return static_cast<float>((rng.next_double() - 0.5) * 0.02) * opt.box;
    };
    p.x = cx + scatter();
    p.y = cy + scatter();
    p.z = cz + scatter();
    p.vx = static_cast<float>(rng.next_double() * 2.0 - 1.0) * 500.0f;
    p.vy = static_cast<float>(rng.next_double() * 2.0 - 1.0) * 500.0f;
    p.vz = static_cast<float>(rng.next_double() * 2.0 - 1.0) * 500.0f;
    out.push_back(p);
  }
  return out;
}

}  // namespace sdss::workloads
