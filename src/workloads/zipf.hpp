// Zipf-distributed key generation (paper Section 4.1).
//
// The paper's skewed workloads draw from p(i) = C / i^alpha over a fixed
// value universe. The maximum replication ratio delta = d/N is then ~p(1) =
// C. With a universe of 10,000 values — the calibration this module
// defaults to — the alpha -> delta mapping matches the paper's Table 2
// (alpha 0.4..0.9 -> delta 0.2%..6.4%) and Table 1 (alpha 0.7/1.4/2.1 ->
// delta 2%/32%/63%).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace sdss::workloads {

class ZipfGenerator {
 public:
  static constexpr std::size_t kDefaultUniverse = 10000;

  /// Build the inverse-CDF table for p(i) = C/i^alpha, i in [1, universe].
  ZipfGenerator(double alpha, std::size_t universe = kDefaultUniverse);

  /// Draw one value in [1, universe]; value 1 is the most frequent.
  std::uint64_t operator()(SplitMix64& rng) const;

  /// Expected maximum replication ratio: p(1) = C = 1/H(alpha, universe).
  double theoretical_delta() const { return delta_; }

  double alpha() const { return alpha_; }
  std::size_t universe() const { return universe_; }

 private:
  double alpha_;
  std::size_t universe_;
  double delta_;
  std::vector<double> cdf_;  ///< cdf_[i] = P(value <= i+1)
};

/// n Zipf keys with the given alpha/universe, deterministic in `seed`.
std::vector<std::uint64_t> zipf_keys(std::size_t n, double alpha,
                                     std::uint64_t seed,
                                     std::size_t universe =
                                         ZipfGenerator::kDefaultUniverse);

}  // namespace sdss::workloads
