// GraySort / TeraSort-style records (the paper's future work: "carry out
// more tests with well-known sorting benchmarks").
//
// The Sort Benchmark (sortbenchmark.org) record is 100 bytes: a 10-byte
// binary key followed by 90 bytes of payload. This generator follows the
// gensort convention of pseudo-random keys deterministic in the record
// index, so distributed shards can be produced independently per rank and
// the full input is reproducible from (seed, first_index, count).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace sdss::workloads {

struct GraySortRecord {
  std::array<std::uint8_t, 10> key;
  std::array<std::uint8_t, 90> payload;
};
static_assert(sizeof(GraySortRecord) == 100);

inline std::array<std::uint8_t, 10> graysort_key(const GraySortRecord& r) {
  return r.key;
}

/// Generate `count` records for global indices [first, first+count).
inline std::vector<GraySortRecord> graysort_records(std::uint64_t first,
                                                    std::size_t count,
                                                    std::uint64_t seed) {
  std::vector<GraySortRecord> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    GraySortRecord& r = out[i];
    SplitMix64 rng(derive_seed(seed, first + i));
    const std::uint64_t hi = rng.next();
    const std::uint64_t lo = rng.next();
    for (int b = 0; b < 8; ++b) {
      r.key[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(hi >> (56 - 8 * b));
    }
    r.key[8] = static_cast<std::uint8_t>(lo >> 8);
    r.key[9] = static_cast<std::uint8_t>(lo);
    // Payload: record index (for validation) then filler.
    std::uint64_t idx = first + i;
    for (int b = 0; b < 8; ++b) {
      r.payload[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(idx >> (56 - 8 * b));
    }
    std::uint64_t fill = rng.next();
    for (std::size_t b = 8; b < r.payload.size(); ++b) {
      fill = fill * 6364136223846793005ULL + 1442695040888963407ULL;
      r.payload[b] = static_cast<std::uint8_t>(fill >> 33);
    }
  }
  return out;
}

/// A skewed GraySort variant: a fraction of the keys collapse onto one hot
/// key (Daytona-style duplicate stress), exercising skew-aware partitioning
/// on byte-string keys.
inline std::vector<GraySortRecord> graysort_records_skewed(
    std::uint64_t first, std::size_t count, std::uint64_t seed,
    double hot_fraction) {
  auto out = graysort_records(first, count, seed);
  SplitMix64 rng(derive_seed(seed ^ 0xabcdef, first));
  std::array<std::uint8_t, 10> hot;
  hot.fill(0x42);
  for (auto& r : out) {
    if (rng.next_double() < hot_fraction) r.key = hot;
  }
  return out;
}

}  // namespace sdss::workloads
