#include "workloads/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sdss::workloads {

ZipfGenerator::ZipfGenerator(double alpha, std::size_t universe)
    : alpha_(alpha), universe_(universe) {
  if (universe_ == 0) throw std::invalid_argument("zipf: empty universe");
  cdf_.resize(universe_);
  double sum = 0.0;
  for (std::size_t i = 0; i < universe_; ++i) {
    sum += std::pow(static_cast<double>(i + 1), -alpha_);
    cdf_[i] = sum;
  }
  const double norm = 1.0 / sum;
  for (double& c : cdf_) c *= norm;
  cdf_.back() = 1.0;  // guard against rounding
  delta_ = std::pow(1.0, -alpha_) * norm;
}

std::uint64_t ZipfGenerator::operator()(SplitMix64& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin()) + 1;
}

std::vector<std::uint64_t> zipf_keys(std::size_t n, double alpha,
                                     std::uint64_t seed,
                                     std::size_t universe) {
  ZipfGenerator gen(alpha, universe);
  SplitMix64 rng(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& k : out) k = gen(rng);
  return out;
}

}  // namespace sdss::workloads
