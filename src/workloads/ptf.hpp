// Synthetic Palomar Transient Factory detections (paper Section 4.2).
//
// The paper sorts 1 billion PTF records by real-bogus classifier score; the
// score column is highly skewed with delta = 28.02% (the classifier
// saturates at "definitely bogus" for most artifacts). We reproduce the two
// behaviour-relevant properties — the duplicate spike and the payload shape
// — with a synthetic catalog: a configurable fraction of records carries the
// saturated score exactly, the remainder a smooth score distribution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "workloads/types.hpp"

namespace sdss::workloads {

struct PtfOptions {
  /// Fraction of detections with the saturated (duplicated) score; the
  /// paper measures 28.02% on the real catalog.
  double bogus_fraction = 0.2802;
  /// The saturated score value.
  float bogus_score = 0.0f;
};

/// Generate n synthetic PTF detections, deterministic in `seed`.
std::vector<PtfRecord> ptf_records(std::size_t n, std::uint64_t seed,
                                   const PtfOptions& opt = {});

}  // namespace sdss::workloads
