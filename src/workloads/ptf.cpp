#include "workloads/ptf.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace sdss::workloads {

std::vector<PtfRecord> ptf_records(std::size_t n, std::uint64_t seed,
                                   const PtfOptions& opt) {
  SplitMix64 rng(seed);
  std::vector<PtfRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PtfRecord r;
    if (rng.next_double() < opt.bogus_fraction) {
      r.rb_score = opt.bogus_score;
    } else {
      // Smooth score mass; squaring biases toward low scores like a real
      // classifier's output on a mostly-bogus stream.
      const double u = rng.next_double();
      r.rb_score = static_cast<float>(u * u);
      if (r.rb_score == opt.bogus_score) r.rb_score = 1e-6f;
    }
    r.obj_id = static_cast<std::uint32_t>(rng.next());
    r.ra = static_cast<float>(rng.next_double() * 360.0);
    r.dec = static_cast<float>(rng.next_double() * 180.0 - 90.0);
    r.mjd = 56000.0 + rng.next_double() * 1500.0;
    out.push_back(r);
  }
  return out;
}

}  // namespace sdss::workloads
