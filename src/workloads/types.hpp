// Record types used by the examples, tests and benches.
#pragma once

#include <cstdint>

namespace sdss::workloads {

/// A cosmological simulation particle as sorted by BD-CATS (paper Section
/// 4.2): the clustering ID is the sort key, position and velocity ride along
/// as payload — 32 bytes total, like the paper's 2.1 TB / 68G-particle set.
struct Particle {
  std::uint64_t cluster_id;
  float x, y, z;
  float vx, vy, vz;
};

/// A Palomar Transient Factory detection: the real-bogus classifier score is
/// the (heavily duplicated, delta ~ 28%) sort key; the rest is payload.
struct PtfRecord {
  float rb_score;      ///< real/bogus classifier output in [0, 1]
  std::uint32_t obj_id;
  float ra;            ///< right ascension, degrees
  float dec;           ///< declination, degrees
  double mjd;          ///< modified Julian date of the detection
};

/// Key + provenance, used to verify stability: after a stable sort, records
/// with equal keys must be ordered by (origin rank, origin index).
template <typename K>
struct Tagged {
  K key;
  std::uint32_t src_rank;
  std::uint32_t src_index;
};

template <typename K>
bool tagged_before(const Tagged<K>& a, const Tagged<K>& b) {
  if (a.src_rank != b.src_rank) return a.src_rank < b.src_rank;
  return a.src_index < b.src_index;
}

}  // namespace sdss::workloads
