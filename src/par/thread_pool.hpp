// Shared-memory parallel substrate used by SdssLocalSort and the node-level
// merge: a fixed-size worker pool with a work-sharing parallel_for.
//
// Design constraints that matter here:
//  * Callers (simulated MPI ranks) may invoke parallel_for concurrently from
//    many threads; the pool must serve them all without deadlock.
//  * The calling thread always participates in executing its own loop, so a
//    pool with zero workers (hardware_concurrency() == 1) degrades to plain
//    sequential execution and parallel_for never blocks on an idle pool.
//  * Tasks submitted through parallel_for must not block on communication;
//    they are pure compute (sort/merge kernels).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sdss::par {

/// A fixed pool of worker threads executing queued std::function jobs.
class ThreadPool {
 public:
  /// Creates `threads` workers. Zero is valid: all work runs inline in the
  /// submitting thread.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Run body(i) for i in [begin, end). The caller participates; returns when
  /// every iteration has finished. Exceptions from body are rethrown in the
  /// caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Run each thunk once, in parallel; caller participates.
  void parallel_invoke(const std::vector<std::function<void()>>& thunks);

  /// Process-wide default pool (hardware_concurrency()-1 workers).
  static ThreadPool& global();

 private:
  struct Batch;

  void enqueue(std::shared_ptr<Batch> batch);
  void worker_loop();
  static void run_batch(Batch& batch);

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::shared_ptr<Batch>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Convenience wrappers over the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);
void parallel_invoke(const std::vector<std::function<void()>>& thunks);

}  // namespace sdss::par
