// Shared-memory parallel substrate used by SdssLocalSort and the node-level
// merge: a fixed-size worker pool with a work-sharing parallel_for.
//
// Design constraints that matter here:
//  * Callers (simulated MPI ranks) may invoke parallel_for concurrently from
//    many threads; the pool must serve them all without deadlock.
//  * The calling thread always participates in executing its own loop, so a
//    pool with zero workers (hardware_concurrency() == 1) degrades to plain
//    sequential execution and parallel_for never blocks on an idle pool.
//  * Tasks submitted through parallel_for must not block on communication;
//    they are pure compute (sort/merge kernels).
//
// Scheduling is chunked: workers claim [lo, lo+grain) strides off one atomic
// counter instead of single indices, so a fine-grained loop pays one
// fetch_add and one type-erased call per stride, not per iteration. The
// index-based parallel_for wraps its body in a range loop and picks a grain
// automatically; parallel_for_ranges exposes the range form directly for
// kernels (radix scatter, bulk copies) that want to process a whole stride
// with zero per-index dispatch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sdss::par {

/// A fixed pool of worker threads executing queued jobs.
class ThreadPool {
 public:
  /// Creates `threads` workers. Zero is valid: all work runs inline in the
  /// submitting thread.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Run body(i) for i in [begin, end). The caller participates; returns when
  /// every iteration has finished. Exceptions from body are rethrown in the
  /// caller (first one wins). Iterations are claimed in chunked strides
  /// (grain picked from the range size and pool width); pass `grain` to
  /// force a stride, e.g. 1 for coarse tasks that must load-balance
  /// per-index.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0);

  /// Range form: run body(lo, hi) over disjoint strides covering
  /// [begin, end). One type-erased call per stride — the fast path for
  /// fine-grained kernels. grain == 0 picks automatically.
  void parallel_for_ranges(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body,
      std::size_t grain = 0);

  /// Run each thunk once, in parallel; caller participates.
  void parallel_invoke(const std::vector<std::function<void()>>& thunks);

  /// Process-wide default pool (hardware_concurrency()-1 workers).
  static ThreadPool& global();

 private:
  struct Batch;

  std::size_t auto_grain(std::size_t n) const;
  void enqueue(std::shared_ptr<Batch> batch);
  void worker_loop();
  static void run_batch(Batch& batch);
  void run_and_wait(const std::shared_ptr<Batch>& batch);

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::shared_ptr<Batch>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Convenience wrappers over the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 0);
void parallel_for_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain = 0);
void parallel_invoke(const std::vector<std::function<void()>>& thunks);

}  // namespace sdss::par
