#include "par/thread_pool.hpp"

#include <exception>

namespace sdss::par {

// A Batch is one parallel_for invocation: an atomic claim counter over the
// iteration space plus completion tracking. Workers and the caller all pull
// strides of `grain` indices with fetch_add until the space is exhausted;
// completion is counted in indices so the waiter wakes exactly once the
// last stride finishes.
struct ThreadPool::Batch {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::exception_ptr error;  // first exception, guarded by err_mu
  std::mutex err_mu;
  std::mutex done_mu;
  std::condition_variable done_cv;

  std::size_t size() const { return end - begin; }
};

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::auto_grain(std::size_t n) const {
  // ~8 strides per participant keeps load balance without per-index
  // dispatch; cap so one stride never starves the other participants.
  const std::size_t parts = (workers_.size() + 1) * 8;
  std::size_t g = n / parts;
  return g == 0 ? 1 : g;
}

void ThreadPool::enqueue(std::shared_ptr<Batch> batch) {
  if (workers_.empty()) return;  // caller will drain the batch inline
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(batch));
  }
  cv_.notify_all();
}

void ThreadPool::run_batch(Batch& batch) {
  const std::size_t n = batch.size();
  const std::size_t grain = batch.grain;
  for (;;) {
    const std::size_t i =
        batch.next.fetch_add(grain, std::memory_order_relaxed);
    if (i >= n) break;
    const std::size_t count = grain < n - i ? grain : n - i;
    try {
      (*batch.body)(batch.begin + i, batch.begin + i + count);
    } catch (...) {
      std::lock_guard<std::mutex> lk(batch.err_mu);
      if (!batch.error) batch.error = std::current_exception();
    }
    const std::size_t completed =
        batch.done.fetch_add(count, std::memory_order_acq_rel) + count;
    if (completed == n) {
      std::lock_guard<std::mutex> lk(batch.done_mu);
      batch.done_cv.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      batch = queue_.front();
      // Leave the batch queued until its iteration space is exhausted so
      // multiple workers can join it; pop once fully claimed.
      if (batch->next.load(std::memory_order_relaxed) >= batch->size()) {
        queue_.erase(queue_.begin());
        continue;
      }
    }
    run_batch(*batch);
    {
      // Remove the batch if it is still at the front and fully claimed.
      std::lock_guard<std::mutex> lk(mu_);
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (queue_[i].get() == batch.get()) {
          queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
  }
}

void ThreadPool::run_and_wait(const std::shared_ptr<Batch>& batch) {
  enqueue(batch);
  run_batch(*batch);  // caller participates
  {
    std::unique_lock<std::mutex> lk(batch->done_mu);
    batch->done_cv.wait(
        lk, [&] { return batch->done.load(std::memory_order_acquire) ==
                         batch->size(); });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::parallel_for_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = auto_grain(n);
  if (n <= grain || workers_.empty()) {
    body(begin, end);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->begin = begin;
  batch->end = end;
  batch->grain = grain;
  batch->body = &body;
  run_and_wait(batch);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  if (end - begin == 1) {
    body(begin);
    return;
  }
  const std::function<void(std::size_t, std::size_t)> range_body =
      [&body](std::size_t lo, std::size_t hi) {
        for (; lo < hi; ++lo) body(lo);
      };
  parallel_for_ranges(begin, end, range_body, grain);
}

void ThreadPool::parallel_invoke(
    const std::vector<std::function<void()>>& thunks) {
  std::function<void(std::size_t)> body = [&](std::size_t i) { thunks[i](); };
  // Thunks are heterogeneous tasks: per-index claiming load-balances best.
  parallel_for(0, thunks.size(), body, /*grain=*/1);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(
      std::thread::hardware_concurrency() > 1
          ? static_cast<std::size_t>(std::thread::hardware_concurrency() - 1)
          : 0);
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  ThreadPool::global().parallel_for(begin, end, body, grain);
}

void parallel_for_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  ThreadPool::global().parallel_for_ranges(begin, end, body, grain);
}

void parallel_invoke(const std::vector<std::function<void()>>& thunks) {
  ThreadPool::global().parallel_invoke(thunks);
}

}  // namespace sdss::par
