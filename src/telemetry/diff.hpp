// Report comparison: the seed of a performance-regression gate.
//
// diff_registries() matches the reports of two files by name and compares
// every phase (plus the phase total and end-to-end wall time) against a
// relative threshold with an absolute-seconds floor — sub-millisecond
// phases jitter by large factors on a shared host, so a pure ratio test
// would cry wolf constantly. The bench/report_diff binary is a thin CLI
// over this; tests drive the logic directly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/report.hpp"

namespace sdss::telemetry {

struct DiffOptions {
  /// A phase regresses when after > before * (1 + threshold) ...
  double threshold = 0.10;
  /// ... and the absolute growth exceeds this floor (noise guard).
  double min_seconds = 1e-3;
  /// Compare CPU seconds (the critical-path proxy, default) or wall.
  bool use_cpu = true;
  /// Also compare the simulated communication counters (p2p/collective
  /// bytes and messages). Unlike timings these are deterministic for a
  /// fixed workload, so the default tolerance is zero: ANY growth flags.
  bool compare_bytes = false;
  /// Relative growth allowed for byte/message counters (0 = exact gate).
  double bytes_threshold = 0.0;
  /// Compare ONLY the communication counters, skipping every timing
  /// metric — the machine-independent regression gate run in CI.
  bool bytes_only = false;
};

struct PhaseDelta {
  std::string report;  ///< RunReport::name
  std::string metric;  ///< phase name, "total", "wall", or a comm counter
  double before = 0.0;
  double after = 0.0;
  bool regressed = false;
  bool is_bytes = false;  ///< comm-counter row (rendered as counts)

  /// Relative change, e.g. +0.25 = 25% slower. 0 when before is 0.
  double relative() const {
    return before > 0.0 ? after / before - 1.0 : 0.0;
  }
};

struct DiffResult {
  std::vector<PhaseDelta> deltas;          ///< every compared metric
  std::vector<std::string> only_before;    ///< names missing from `after`
  std::vector<std::string> only_after;     ///< names missing from `before`
  bool any_regression = false;

  std::vector<PhaseDelta> regressions() const;
};

DiffResult diff_registries(const ReportRegistry& before,
                           const ReportRegistry& after,
                           const DiffOptions& opts = {});

/// Human-readable rendering of a diff (the report_diff CLI output): one row
/// per compared metric, regressions flagged, unmatched reports listed.
void print_diff(std::ostream& os, const DiffResult& d,
                const DiffOptions& opts);

/// Machine-readable rendering (report_diff --json): newline-delimited JSON,
/// one object per compared metric ("type":"delta"), one per unmatched
/// report ("only_before"/"only_after"), and a final "summary" object with
/// the regression count. Non-finite before/after values serialize as null,
/// like everywhere else in the telemetry layer.
void print_diff_json(std::ostream& os, const DiffResult& d,
                     const DiffOptions& opts);

}  // namespace sdss::telemetry
