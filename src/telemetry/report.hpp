// Unified run reports: the machine-readable record of one measured run.
//
// Every bench and example funnels its measurements through a RunReport: the
// reduced PhaseLedger (wall + CPU seconds per phase, max over ranks — the
// SPMD critical path the paper plots), per-rank CommStats, load balance
// (RDFA, Tables 3/4), workload and configuration metadata (distribution,
// delta, N, p, tau thresholds, adaptive decisions), and the simulated
// network parameters that priced the run. A ReportRegistry accumulates the
// reports of one process — a bench that sweeps 15 configurations writes one
// file with 15 reports — and serializes them with a schema version so
// downstream tooling (report_diff, plotting scripts, regression gates) can
// evolve without guessing.
//
// Schema sketch (full annotated example in docs/OBSERVABILITY.md):
//   { "schema_version": 1, "generator": "sdss-bench",
//     "reports": [ { "name", "experiment", "algorithm", "workload",
//                    "params": {..}, "cluster": {..}, "outcome": {..},
//                    "phases": {..}, "comm": {..}, "load_balance": {..} } ] }
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/splitter.hpp"
#include "obs/metrics.hpp"
#include "sortcore/spill.hpp"
#include "sim/chaos.hpp"
#include "sim/comm_stats.hpp"
#include "telemetry/json.hpp"
#include "trace/analyze.hpp"
#include "util/phase_ledger.hpp"

namespace sdss::telemetry {

/// Bumped whenever a field is renamed, removed, or changes meaning. Adding
/// fields is backward-compatible and does not bump it.
inline constexpr int kReportSchemaVersion = 1;
inline constexpr const char* kReportGenerator = "sdss-bench";

struct RunReport {
  /// Identifies the configuration within the file; report_diff matches
  /// before/after reports by this name. E.g. "fig8/zipf-1.4/p=32/SDS-Sort".
  std::string name;
  std::string experiment;  ///< bench header, e.g. "Fig. 8 — weak scaling"
  std::string algorithm;   ///< "SDS-Sort", "HykSort", ...
  std::string workload;    ///< "uniform", "zipf:1.4", "ptf", ...

  /// Free-form configuration metadata: delta, records/rank, tau thresholds,
  /// adaptive decisions taken. Insertion-ordered for stable serialization.
  std::vector<std::pair<std::string, std::string>> params;
  void set_param(const std::string& key, std::string value);
  const std::string* find_param(const std::string& key) const;

  // Cluster + simulated network configuration.
  int ranks = 0;
  int cores_per_node = 1;
  double net_latency_s = 0.0;
  double net_bandwidth_Bps = 0.0;

  // Outcome.
  bool ok = true;
  bool oom = false;
  /// Failure taxonomy (sim::failure_class_name): "none", "oom", "deadlock",
  /// "injected-crash", "peer-abort", "spill-io", "logic-error". Adding these
  /// fields is backward-compatible (no schema bump); old files read back as
  /// "none"/-1.
  std::string failure_class = "none";
  /// Sub-classification of the primary failure: the OOM phase ("partition",
  /// "exchange", "merge") or the spill op class ("spill-write",
  /// "spill-read"). "" when ok or not applicable.
  std::string failure_detail;
  int failed_rank = -1;  ///< rank of the primary failure; -1 when ok/deadlock
  double wall_seconds = -1.0;  ///< slowest rank, barrier-bracketed
  double crit_path_cpu_seconds = 0.0;  ///< max over ranks of CPU total

  // Chaos engine (sim/chaos.hpp): present only for fault-injection runs.
  // `fault_events` is the deterministic fired schedule (crashes + stalls;
  // jitter is aggregated into jittered_messages).
  bool has_chaos = false;
  std::uint64_t chaos_seed = 0;
  std::vector<sim::FaultEvent> fault_events;
  std::uint64_t jittered_messages = 0;

  /// Per-phase wall + CPU seconds, element-wise max over ranks.
  PhaseLedger phases;
  /// The full per-rank distribution behind that max (rank order; empty for
  /// local runs). This is what makes imbalance recoverable from the report
  /// file alone — the max says *that* a phase was slow, the distribution
  /// says *which rank* made it so.
  std::vector<PhaseLedger> phases_per_rank;

  // Trace analysis (trace/analyze.hpp), summarized per phase: which rank
  // bounded the phase, by how much, and how skewed the distribution was.
  // has_trace distinguishes "no trace recorded" (older files, tracing
  // disabled) from genuine zeros.
  struct TracePhase {
    std::string name;
    int critical_rank = -1;
    double max_s = 0.0;
    double avg_s = 0.0;
    double lambda = 0.0;    ///< max/avg — the paper's imbalance factor
    double margin_s = 0.0;  ///< max minus runner-up
    double blocked_s = 0.0; ///< critical rank's blocked-in-collective time
  };
  bool has_trace = false;
  std::vector<TracePhase> trace_phases;
  double trace_lambda_records = 0.0;  ///< λ of per-rank received records —
                                      ///< deterministic, the CI gate's input
  double trace_blocked_frac = 0.0;    ///< blocked share of all phase time
  std::uint64_t trace_events = 0;

  // Communication: whole-cluster totals plus the per-rank counters (rank
  // order), so imbalance in *traffic* is visible, not just in load.
  sim::CommStats comm_total;
  std::vector<sim::CommStats> comm_per_rank;

  // Load balance of the output distribution (paper RDFA = max/avg).
  double rdfa = 0.0;
  std::uint64_t max_load = 0;
  std::uint64_t total_records = 0;

  // Local-kernel memory traffic (sortcore kernel_counters() deltas over the
  // measured region). Deterministic for single-threaded fixed workloads, so
  // report_diff can gate them exactly. has_kernel distinguishes "no kernel
  // data recorded" (older files) from genuine zeros.
  bool has_kernel = false;
  std::uint64_t kernel_bytes_moved = 0;
  std::uint64_t kernel_scratch_bytes = 0;
  std::uint64_t kernel_heap_allocs = 0;
  std::uint64_t kernel_arena_hwm = 0;  ///< peak live arena bytes (level)

  // SIMD shim dispatch and merge-gallop traffic (the kernel.simd subobject
  // plus kernel.merge_gallop_bytes). Separately flagged so a baseline
  // written before the shim existed doesn't read as "all dispatches
  // regressed to zero". The ISA name and lane count are recorded for
  // diagnosis but never diffed (they are machine properties, not workload
  // properties); the dispatch counts are ISA-independent and gate-able.
  bool has_kernel_simd = false;
  std::uint64_t kernel_merge_gallop_bytes = 0;
  std::string kernel_simd_isa;        ///< resolved ISA ("avx2", "scalar", …)
  int kernel_simd_lanes = 1;          ///< 64-bit lanes per vector op
  std::uint64_t kernel_simd_hist_calls = 0;
  std::uint64_t kernel_simd_sortnet_calls = 0;
  std::uint64_t kernel_simd_gallop_calls = 0;

  // ε-bounded splitter refinement (the partition.refinement JSON subobject,
  // docs/OBSERVABILITY.md). Every counter is a pure function of the
  // distributed data — identical on all ranks and across reruns — so
  // report_diff gates them exactly, including the per-round candidate
  // counts whose monotone decrease is the interval-pruning invariant.
  // has_refinement distinguishes "run didn't use kHistogramEps" from zeros.
  bool has_refinement = false;
  RefineStats refinement;

  // Out-of-core spill path (sortcore/spill.hpp; the `spill` JSON subobject,
  // docs/OBSERVABILITY.md). Counters are whole-cluster sums except
  // peak_resident_records (max over ranks); all are deterministic for a
  // fixed workload/config, so report_diff gates them exactly. has_spill
  // distinguishes "run stayed in-core" from genuine zeros.
  bool has_spill = false;
  std::uint64_t spill_runs_written = 0;
  std::uint64_t spill_frames_written = 0;
  std::uint64_t spill_bytes_spilled = 0;
  std::uint64_t spill_bytes_reloaded = 0;
  std::uint64_t spill_merge_passes = 0;  ///< max over ranks
  std::uint64_t spill_peak_resident_records = 0;  ///< max over ranks

  // Metrics registry snapshot (obs/metrics.hpp; the `metrics` JSON
  // subobject, docs/OBSERVABILITY.md). Counters are cluster sums, gauges
  // maxes, histograms bucket-merged; the series are the deterministic
  // per-rank progress marks (never the wall-clock sampler — see
  // obs/sampler.hpp). Deterministic counters/gauges are diffed exactly;
  // nanosecond-valued histograms are reported but never gated (machine
  // properties). has_metrics distinguishes "metrics disabled / old file"
  // from an empty registry.
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;
};

/// Fill a report's refinement section from the driver's RefineStats (sets
/// has_refinement).
void set_refinement(RunReport& r, const RefineStats& s);

/// Merge one rank's spill counters into the report's spill section (sets
/// has_spill). Run/frame/byte counters sum across ranks; merge passes and
/// the resident peak take the max — the per-rank out-of-core cost, not a
/// meaningless sum over ranks that spilled independently.
void add_spill(RunReport& r, const SpillStats& s);

/// Fill a report's trace section from an analyzed run trace (sets
/// has_trace and the per-phase critical-path/λ summaries).
void set_trace(RunReport& r, const trace::TraceAnalysis& a);

/// Fill a report's metrics section from a run's aggregated snapshot (sets
/// has_metrics).
void set_metrics(RunReport& r, const obs::MetricsSnapshot& s);

/// Serialize one report to its JSON object form (stable member order).
Json to_json(const RunReport& r);

/// Rebuild a report from its JSON form. Unknown members are ignored;
/// missing members keep their defaults (forward compatibility).
RunReport report_from_json(const Json& j);

/// The per-process accumulator: add() every measured configuration, then
/// write() once. References returned by add() stay valid until the registry
/// is destroyed (benches enrich the last report with post-run RDFA).
class ReportRegistry {
 public:
  RunReport& add(RunReport r);

  bool empty() const { return reports_.empty(); }
  std::size_t size() const { return reports_.size(); }
  const std::vector<RunReport>& reports() const { return reports_; }
  RunReport* last() { return reports_.empty() ? nullptr : &reports_.back(); }

  /// Find by exact name; nullptr when absent.
  const RunReport* find(const std::string& name) const;

  /// Write the full file: schema version + generator + every report.
  void write(std::ostream& os) const;
  Json to_json() const;

  /// Load a report file produced by write(). Throws sdss::Error on
  /// malformed JSON or a schema_version newer than this binary understands.
  static ReportRegistry load(const Json& file);
  static ReportRegistry load_file(const std::string& path);

 private:
  std::vector<RunReport> reports_;
};

/// Resolve the report output path for this process: the `--json <path>` /
/// `--json=<path>` flag from /proc/self/cmdline when present (this is how
/// argv-less bench mains still honor the flag), else the SDSS_BENCH_JSON
/// environment variable, else "" (telemetry off).
std::string report_path_from_cmdline_or_env();

}  // namespace sdss::telemetry
