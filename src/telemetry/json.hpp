// Minimal JSON document model for the telemetry layer: writer and parser
// with zero third-party dependencies.
//
// Design constraints, in order:
//  * stable output — objects preserve insertion order, numbers render via
//    std::to_chars shortest-round-trip form, so serializing the same report
//    twice produces byte-identical files (diffable, cacheable);
//  * round-trip fidelity — parse(dump(x)) == x for every value the
//    telemetry layer emits (numbers are stored as double: integers are
//    exact up to 2^53, far beyond any bench counter);
//  * small surface — just what RunReport serialization and report_diff
//    loading need, not a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sdss::telemetry {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  ///< null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(d) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(std::string_view s) : Json(std::string(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  // --- scalar access (defaulted: telemetry fields are all optional) ------
  bool bool_or(bool def = false) const {
    return type_ == Type::kBool ? bool_ : def;
  }
  double number_or(double def = 0.0) const {
    return type_ == Type::kNumber ? num_ : def;
  }
  std::uint64_t u64_or(std::uint64_t def = 0) const {
    return type_ == Type::kNumber ? static_cast<std::uint64_t>(num_) : def;
  }
  const std::string& string_or(const std::string& def) const {
    return type_ == Type::kString ? str_ : def;
  }
  std::string string_value() const {
    return type_ == Type::kString ? str_ : std::string();
  }

  // --- array ------------------------------------------------------------
  void push_back(Json v);
  const std::vector<Json>& items() const { return arr_; }
  std::size_t size() const;

  // --- object (insertion-ordered) ----------------------------------------
  /// Set `key` to `v`; replaces an existing key in place (order preserved),
  /// appends otherwise. Returns *this for chaining.
  Json& set(std::string key, Json v);
  /// Member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;
  /// Member lookup that never fails: returns a shared null for misses, so
  /// readers can chain `j.at("a").at("b").number_or(0)`.
  const Json& at(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  bool operator==(const Json& o) const;

  // --- serialization ------------------------------------------------------
  /// Write as JSON text. indent > 0 pretty-prints with that many spaces per
  /// level; indent == 0 emits the compact single-line form.
  void write(std::ostream& os, int indent = 0) const;
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document. Throws sdss::Error with the byte
  /// offset on malformed input or trailing garbage.
  static Json parse(std::string_view text);

 private:
  void write_indented(std::ostream& os, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Write `s` as a JSON string literal — quoted, with quotes, backslashes
/// and all control characters escaped. The one escaping routine shared by
/// the document writer above and streaming emitters (the Chrome-trace
/// exporter) that build JSON without materializing a Json tree.
void write_json_string(std::ostream& os, std::string_view s);

}  // namespace sdss::telemetry
