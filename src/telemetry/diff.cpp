#include "telemetry/diff.hpp"

#include <cmath>
#include <cstdint>
#include <ostream>

#include "util/format.hpp"

namespace sdss::telemetry {

namespace {

bool is_regression(double before, double after, const DiffOptions& opts) {
  return after > before * (1.0 + opts.threshold) &&
         after - before > opts.min_seconds;
}

void compare_metric(DiffResult& out, const std::string& report,
                    const std::string& metric, double before, double after,
                    const DiffOptions& opts) {
  PhaseDelta d;
  d.report = report;
  d.metric = metric;
  d.before = before;
  d.after = after;
  // Non-finite values serialize as JSON null (telemetry/json.cpp), so they
  // are legitimate report content, not parse errors. Both sides non-finite
  // compares equal; one side flipping to (or from) non-finite is a
  // divergence the ratio test cannot price, so it always flags.
  const bool bf = std::isfinite(before);
  const bool af = std::isfinite(after);
  d.regressed =
      bf != af ? true : (bf ? is_regression(before, after, opts) : false);
  out.any_regression = out.any_regression || d.regressed;
  out.deltas.push_back(std::move(d));
}

void compare_counter(DiffResult& out, const std::string& report,
                     const std::string& metric, std::uint64_t before,
                     std::uint64_t after, const DiffOptions& opts) {
  PhaseDelta d;
  d.report = report;
  d.metric = metric;
  d.before = static_cast<double>(before);
  d.after = static_cast<double>(after);
  d.is_bytes = true;
  // Counters are deterministic: no absolute noise floor, any growth past
  // the (default zero) tolerance is a regression.
  d.regressed =
      after > static_cast<std::uint64_t>(
                  static_cast<double>(before) * (1.0 + opts.bytes_threshold));
  out.any_regression = out.any_regression || d.regressed;
  out.deltas.push_back(std::move(d));
}

void compare_comm(DiffResult& out, const RunReport& b, const RunReport& a,
                  const DiffOptions& opts) {
  const sim::CommStats& bc = b.comm_total;
  const sim::CommStats& ac = a.comm_total;
  compare_counter(out, b.name, "p2p_bytes", bc.p2p_bytes, ac.p2p_bytes, opts);
  compare_counter(out, b.name, "p2p_messages", bc.p2p_messages,
                  ac.p2p_messages, opts);
  compare_counter(out, b.name, "coll_bytes_out", bc.collective_bytes_out,
                  ac.collective_bytes_out, opts);
  compare_counter(out, b.name, "coll_messages", bc.collective_messages,
                  ac.collective_messages, opts);
}

void compare_kernel(DiffResult& out, const RunReport& b, const RunReport& a,
                    const DiffOptions& opts) {
  // Only when both sides recorded kernel counters: a baseline written before
  // the kernel section existed must not read as "everything regressed from
  // zero" (or silently pass as all-zero).
  if (!b.has_kernel || !a.has_kernel) return;
  compare_counter(out, b.name, "kernel_bytes_moved", b.kernel_bytes_moved,
                  a.kernel_bytes_moved, opts);
  compare_counter(out, b.name, "kernel_scratch_bytes", b.kernel_scratch_bytes,
                  a.kernel_scratch_bytes, opts);
  compare_counter(out, b.name, "kernel_heap_allocs", b.kernel_heap_allocs,
                  a.kernel_heap_allocs, opts);
  compare_counter(out, b.name, "kernel_arena_hwm", b.kernel_arena_hwm,
                  a.kernel_arena_hwm, opts);
  // The simd subsection follows the same both-sides rule (older baselines
  // predate it). The dispatch counts are ISA-independent by construction,
  // so they diff exactly even across machines; the ISA name itself is a
  // machine property and is deliberately not compared.
  if (!b.has_kernel_simd || !a.has_kernel_simd) return;
  compare_counter(out, b.name, "kernel_merge_gallop_bytes",
                  b.kernel_merge_gallop_bytes, a.kernel_merge_gallop_bytes,
                  opts);
  compare_counter(out, b.name, "kernel_simd_hist_calls",
                  b.kernel_simd_hist_calls, a.kernel_simd_hist_calls, opts);
  compare_counter(out, b.name, "kernel_simd_sortnet_calls",
                  b.kernel_simd_sortnet_calls, a.kernel_simd_sortnet_calls,
                  opts);
  compare_counter(out, b.name, "kernel_simd_gallop_calls",
                  b.kernel_simd_gallop_calls, a.kernel_simd_gallop_calls,
                  opts);
}

void compare_trace(DiffResult& out, const RunReport& b, const RunReport& a,
                   const DiffOptions& opts) {
  // Same both-sides rule as compare_kernel: a pre-trace baseline must not
  // fake a regression from zero. λ of per-rank received records is a record
  // *count* ratio — deterministic for a fixed seed — so it sits with the
  // counter gates, with the same growth tolerance (it is a small ratio, not
  // a byte count, hence compare directly rather than through the u64 path).
  if (!b.has_trace || !a.has_trace) return;
  if (b.trace_lambda_records <= 0.0 && a.trace_lambda_records <= 0.0) return;
  PhaseDelta d;
  d.report = b.name;
  d.metric = "trace_lambda_records";
  d.before = b.trace_lambda_records;
  d.after = a.trace_lambda_records;
  d.regressed =
      d.after > d.before * (1.0 + opts.bytes_threshold) + 1e-9;
  out.any_regression = out.any_regression || d.regressed;
  out.deltas.push_back(std::move(d));
}

void compare_refinement(DiffResult& out, const RunReport& b,
                        const RunReport& a, const DiffOptions& opts) {
  // Both-sides rule again: only gate when both runs used the ε-bounded
  // refiner. All counters are pure functions of the distributed data, so
  // they diff exactly; comm bytes and candidate counts are summed over
  // rounds (the per-round monotone-decrease invariant is asserted by the
  // ablation bench itself, the diff gates total refinement cost).
  if (!b.has_refinement || !a.has_refinement) return;
  const RefineStats& bs = b.refinement;
  const RefineStats& as = a.refinement;
  compare_counter(out, b.name, "refine_rounds",
                  static_cast<std::uint64_t>(bs.rounds),
                  static_cast<std::uint64_t>(as.rounds), opts);
  std::uint64_t b_bytes = 0, a_bytes = 0, b_cands = 0, a_cands = 0;
  for (const RefineRound& rr : bs.per_round) {
    b_bytes += rr.comm_bytes;
    b_cands += rr.candidates;
  }
  for (const RefineRound& rr : as.per_round) {
    a_bytes += rr.comm_bytes;
    a_cands += rr.candidates;
  }
  compare_counter(out, b.name, "refine_comm_bytes", b_bytes, a_bytes, opts);
  compare_counter(out, b.name, "refine_candidates", b_cands, a_cands, opts);
  compare_counter(out, b.name, "refine_fractional_splitters",
                  bs.fractional_splitters, as.fractional_splitters, opts);
  // Achieved ε is a small deterministic ratio like trace λ: growing past
  // the counter tolerance (e.g. a boundary no longer resolving exactly)
  // is a balance regression even if nothing OOMs.
  PhaseDelta d;
  d.report = b.name;
  d.metric = "refine_achieved_eps";
  d.before = bs.achieved_epsilon;
  d.after = as.achieved_epsilon;
  d.regressed = d.after > d.before * (1.0 + opts.bytes_threshold) + 1e-9;
  out.any_regression = out.any_regression || d.regressed;
  out.deltas.push_back(std::move(d));
}

void compare_spill(DiffResult& out, const RunReport& b, const RunReport& a,
                   const DiffOptions& opts) {
  // Both-sides rule: only gate when both runs went out-of-core (a baseline
  // written before the spill path existed, or an in-core run, must not fake
  // a regression from zero). Every counter is deterministic for a fixed
  // workload/config, so growth past the (default zero) tolerance — more
  // runs, more reload traffic, an extra merge pass, a higher resident
  // peak — is a real out-of-core cost regression.
  if (!b.has_spill || !a.has_spill) return;
  compare_counter(out, b.name, "spill_runs_written", b.spill_runs_written,
                  a.spill_runs_written, opts);
  compare_counter(out, b.name, "spill_frames_written", b.spill_frames_written,
                  a.spill_frames_written, opts);
  compare_counter(out, b.name, "spill_bytes_spilled", b.spill_bytes_spilled,
                  a.spill_bytes_spilled, opts);
  compare_counter(out, b.name, "spill_bytes_reloaded", b.spill_bytes_reloaded,
                  a.spill_bytes_reloaded, opts);
  compare_counter(out, b.name, "spill_merge_passes", b.spill_merge_passes,
                  a.spill_merge_passes, opts);
  compare_counter(out, b.name, "spill_peak_resident",
                  b.spill_peak_resident_records,
                  a.spill_peak_resident_records, opts);
}

const obs::ScalarSnapshot* find_scalar(
    const std::vector<obs::ScalarSnapshot>& v, const std::string& name) {
  for (const obs::ScalarSnapshot& s : v) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

/// Compare one scalar list (counters or gauges) over the UNION of names: a
/// metric present on only one side reads as 0 on the other, so activity
/// appearing or disappearing is visible, not silently skipped. Nanosecond-
/// valued scalars are machine properties and are never gated.
void compare_scalar_union(DiffResult& out, const std::string& report,
                          const std::vector<obs::ScalarSnapshot>& b,
                          const std::vector<obs::ScalarSnapshot>& a,
                          const DiffOptions& opts) {
  for (const obs::ScalarSnapshot& sb : b) {
    if (sb.unit == obs::MetricUnit::kNanos) continue;
    const obs::ScalarSnapshot* sa = find_scalar(a, sb.name);
    compare_counter(out, report, "metrics." + sb.name, sb.value,
                    sa != nullptr ? sa->value : 0, opts);
  }
  for (const obs::ScalarSnapshot& sa : a) {
    if (sa.unit == obs::MetricUnit::kNanos) continue;
    if (find_scalar(b, sa.name) != nullptr) continue;
    compare_counter(out, report, "metrics." + sa.name, 0, sa.value, opts);
  }
}

void compare_metrics(DiffResult& out, const RunReport& b, const RunReport& a,
                     const DiffOptions& opts) {
  // Both-sides rule, like every optional section: a baseline written before
  // the metrics layer existed (or with metrics disabled) is not a
  // regression from zero.
  if (!b.has_metrics || !a.has_metrics) return;
  compare_scalar_union(out, b.name, b.metrics.counters, a.metrics.counters,
                       opts);
  compare_scalar_union(out, b.name, b.metrics.gauges, a.metrics.gauges, opts);
  // Histograms: message-size distributions are deterministic (count and
  // total bytes gate exactly); latency (nanos) histograms are wall-clock
  // shaped and are never compared. Both-names-present only: a histogram is
  // dropped from the snapshot when it recorded nothing, and zero activity
  // vs no gate is already covered by the matching counters.
  for (const obs::HistogramSnapshot& hb : b.metrics.histograms) {
    if (hb.unit == obs::MetricUnit::kNanos) continue;
    for (const obs::HistogramSnapshot& ha : a.metrics.histograms) {
      if (ha.name != hb.name || ha.unit == obs::MetricUnit::kNanos) continue;
      compare_counter(out, b.name, "metrics." + hb.name + ".count", hb.count,
                      ha.count, opts);
      compare_counter(out, b.name, "metrics." + hb.name + ".sum", hb.sum,
                      ha.sum, opts);
    }
  }
  // Deterministic progress series: sample count and value sum gate exactly
  // (both-sides-present; values are record counts at phase checkpoints).
  for (const obs::SeriesSnapshot& sb : b.metrics.series) {
    for (const obs::SeriesSnapshot& sa : a.metrics.series) {
      if (sa.name != sb.name) continue;
      std::uint64_t b_n = 0, a_n = 0, b_sum = 0, a_sum = 0;
      for (const auto& row : sb.per_rank) {
        b_n += row.size();
        for (std::uint64_t v : row) b_sum += v;
      }
      for (const auto& row : sa.per_rank) {
        a_n += row.size();
        for (std::uint64_t v : row) a_sum += v;
      }
      compare_counter(out, b.name, "metrics.series." + sb.name + ".samples",
                      b_n, a_n, opts);
      compare_counter(out, b.name, "metrics.series." + sb.name + ".sum",
                      b_sum, a_sum, opts);
    }
  }
}

}  // namespace

std::vector<PhaseDelta> DiffResult::regressions() const {
  std::vector<PhaseDelta> out;
  for (const PhaseDelta& d : deltas) {
    if (d.regressed) out.push_back(d);
  }
  return out;
}

DiffResult diff_registries(const ReportRegistry& before,
                           const ReportRegistry& after,
                           const DiffOptions& opts) {
  DiffResult out;
  for (const RunReport& b : before.reports()) {
    const RunReport* a = after.find(b.name);
    if (a == nullptr) {
      out.only_before.push_back(b.name);
      continue;
    }
    if (b.ok != a->ok) {
      // A run flipping between completing and failing dominates any timing
      // delta; surface it as one pseudo-metric. Newly failing = regression.
      PhaseDelta d;
      d.report = b.name;
      d.metric = a->ok ? "status: FAIL -> ok" : "status: ok -> FAIL";
      d.regressed = !a->ok;
      out.any_regression = out.any_regression || d.regressed;
      out.deltas.push_back(std::move(d));
      continue;
    }
    if (!b.ok) continue;  // both failed: nothing to time
    if (!opts.bytes_only) {
      for (std::size_t i = 0; i < kNumPhases; ++i) {
        const auto p = static_cast<Phase>(i);
        const double bv =
            opts.use_cpu ? b.phases.cpu_seconds(p) : b.phases.seconds(p);
        const double av =
            opts.use_cpu ? a->phases.cpu_seconds(p) : a->phases.seconds(p);
        compare_metric(out, b.name, std::string(phase_name(p)), bv, av, opts);
      }
      compare_metric(out, b.name, "total",
                     opts.use_cpu ? b.phases.cpu_total() : b.phases.total(),
                     opts.use_cpu ? a->phases.cpu_total() : a->phases.total(),
                     opts);
      compare_metric(out, b.name, "wall", b.wall_seconds, a->wall_seconds,
                     opts);
    }
    if (opts.compare_bytes || opts.bytes_only) {
      compare_comm(out, b, *a, opts);
      compare_kernel(out, b, *a, opts);
      compare_refinement(out, b, *a, opts);
      compare_spill(out, b, *a, opts);
      compare_metrics(out, b, *a, opts);
      compare_trace(out, b, *a, opts);
    }
  }
  for (const RunReport& a : after.reports()) {
    if (before.find(a.name) == nullptr) out.only_after.push_back(a.name);
  }
  return out;
}

void print_diff(std::ostream& os, const DiffResult& d,
                const DiffOptions& opts) {
  TextTable table;
  table.header({"report", "metric", "before", "after", "delta", ""});
  for (const PhaseDelta& pd : d.deltas) {
    const double rel = pd.relative();
    const char sign = rel >= 0.0 ? '+' : '-';
    // Timing rows render as seconds; counter rows as plain integers
    // (bytes or message counts).
    const std::string before =
        pd.is_bytes ? std::to_string(static_cast<std::uint64_t>(pd.before))
                    : fmt_seconds(pd.before);
    const std::string after =
        pd.is_bytes ? std::to_string(static_cast<std::uint64_t>(pd.after))
                    : fmt_seconds(pd.after);
    table.row({pd.report, pd.metric, before, after,
               sign + fmt_seconds(std::fabs(rel) * 100.0, 1) + "%",
               pd.regressed ? "REGRESSION" : ""});
  }
  os << table.str();
  for (const std::string& name : d.only_before) {
    os << "only in before: " << name << "\n";
  }
  for (const std::string& name : d.only_after) {
    os << "only in after:  " << name << "\n";
  }
  const auto regs = d.regressions();
  os << (regs.empty() ? "no regressions" : "REGRESSIONS: ")
     << (regs.empty() ? "" : std::to_string(regs.size()));
  if (opts.bytes_only) {
    os << " (comm/kernel/refinement/spill/metrics counters + trace lambda "
          "only, tolerance "
       << fmt_seconds(opts.bytes_threshold * 100.0, 0) << "%)\n";
  } else {
    os << " (threshold " << fmt_seconds(opts.threshold * 100.0, 0)
       << "%, floor " << fmt_seconds(opts.min_seconds, 4) << "s, "
       << (opts.use_cpu ? "cpu" : "wall") << " clock"
       << (opts.compare_bytes ? ", + comm counters" : "") << ")\n";
  }
}

void print_diff_json(std::ostream& os, const DiffResult& d,
                     const DiffOptions& opts) {
  for (const PhaseDelta& pd : d.deltas) {
    Json j = Json::object();
    j.set("type", "delta");
    j.set("report", pd.report);
    j.set("metric", pd.metric);
    j.set("before", pd.before);
    j.set("after", pd.after);
    j.set("relative", pd.relative());
    j.set("regression", pd.regressed);
    j.set("counter", pd.is_bytes);
    j.write(os, 0);
    os << "\n";
  }
  for (const std::string& name : d.only_before) {
    Json j = Json::object();
    j.set("type", "only_before");
    j.set("report", name);
    j.write(os, 0);
    os << "\n";
  }
  for (const std::string& name : d.only_after) {
    Json j = Json::object();
    j.set("type", "only_after");
    j.set("report", name);
    j.write(os, 0);
    os << "\n";
  }
  Json j = Json::object();
  j.set("type", "summary");
  j.set("regressions", static_cast<std::uint64_t>(d.regressions().size()));
  j.set("bytes_only", opts.bytes_only);
  j.set("threshold", opts.bytes_only ? opts.bytes_threshold : opts.threshold);
  j.write(os, 0);
  os << "\n";
}

}  // namespace sdss::telemetry
