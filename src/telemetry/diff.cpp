#include "telemetry/diff.hpp"

#include <cmath>
#include <ostream>

#include "util/format.hpp"

namespace sdss::telemetry {

namespace {

bool is_regression(double before, double after, const DiffOptions& opts) {
  return after > before * (1.0 + opts.threshold) &&
         after - before > opts.min_seconds;
}

void compare_metric(DiffResult& out, const std::string& report,
                    const std::string& metric, double before, double after,
                    const DiffOptions& opts) {
  PhaseDelta d;
  d.report = report;
  d.metric = metric;
  d.before = before;
  d.after = after;
  d.regressed = is_regression(before, after, opts);
  out.any_regression = out.any_regression || d.regressed;
  out.deltas.push_back(std::move(d));
}

}  // namespace

std::vector<PhaseDelta> DiffResult::regressions() const {
  std::vector<PhaseDelta> out;
  for (const PhaseDelta& d : deltas) {
    if (d.regressed) out.push_back(d);
  }
  return out;
}

DiffResult diff_registries(const ReportRegistry& before,
                           const ReportRegistry& after,
                           const DiffOptions& opts) {
  DiffResult out;
  for (const RunReport& b : before.reports()) {
    const RunReport* a = after.find(b.name);
    if (a == nullptr) {
      out.only_before.push_back(b.name);
      continue;
    }
    if (b.ok != a->ok) {
      // A run flipping between completing and failing dominates any timing
      // delta; surface it as one pseudo-metric. Newly failing = regression.
      PhaseDelta d;
      d.report = b.name;
      d.metric = a->ok ? "status: FAIL -> ok" : "status: ok -> FAIL";
      d.regressed = !a->ok;
      out.any_regression = out.any_regression || d.regressed;
      out.deltas.push_back(std::move(d));
      continue;
    }
    if (!b.ok) continue;  // both failed: nothing to time
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      const auto p = static_cast<Phase>(i);
      const double bv =
          opts.use_cpu ? b.phases.cpu_seconds(p) : b.phases.seconds(p);
      const double av =
          opts.use_cpu ? a->phases.cpu_seconds(p) : a->phases.seconds(p);
      compare_metric(out, b.name, std::string(phase_name(p)), bv, av, opts);
    }
    compare_metric(out, b.name, "total",
                   opts.use_cpu ? b.phases.cpu_total() : b.phases.total(),
                   opts.use_cpu ? a->phases.cpu_total() : a->phases.total(),
                   opts);
    compare_metric(out, b.name, "wall", b.wall_seconds, a->wall_seconds,
                   opts);
  }
  for (const RunReport& a : after.reports()) {
    if (before.find(a.name) == nullptr) out.only_after.push_back(a.name);
  }
  return out;
}

void print_diff(std::ostream& os, const DiffResult& d,
                const DiffOptions& opts) {
  TextTable table;
  table.header({"report", "metric", "before(s)", "after(s)", "delta", ""});
  for (const PhaseDelta& pd : d.deltas) {
    const double rel = pd.relative();
    const char sign = rel >= 0.0 ? '+' : '-';
    table.row({pd.report, pd.metric, fmt_seconds(pd.before),
               fmt_seconds(pd.after),
               sign + fmt_seconds(std::fabs(rel) * 100.0, 1) + "%",
               pd.regressed ? "REGRESSION" : ""});
  }
  os << table.str();
  for (const std::string& name : d.only_before) {
    os << "only in before: " << name << "\n";
  }
  for (const std::string& name : d.only_after) {
    os << "only in after:  " << name << "\n";
  }
  const auto regs = d.regressions();
  os << (regs.empty() ? "no regressions" : "REGRESSIONS: ")
     << (regs.empty() ? "" : std::to_string(regs.size()))
     << " (threshold " << fmt_seconds(opts.threshold * 100.0, 0)
     << "%, floor " << fmt_seconds(opts.min_seconds, 4) << "s, "
     << (opts.use_cpu ? "cpu" : "wall") << " clock)\n";
}

}  // namespace sdss::telemetry
