#include "telemetry/report.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace sdss::telemetry {

namespace {

Json phase_entry(const PhaseLedger& l, Phase p) {
  Json e = Json::object();
  e.set("wall_s", l.seconds(p));
  e.set("cpu_s", l.cpu_seconds(p));
  return e;
}

Json comm_entry(const sim::CommStats& c) {
  Json e = Json::object();
  e.set("p2p_messages", c.p2p_messages);
  e.set("p2p_bytes", c.p2p_bytes);
  e.set("collectives", c.collectives);
  e.set("collective_bytes_out", c.collective_bytes_out);
  e.set("collective_messages", c.collective_messages);
  // Per-algorithm attribution, keyed by the stable coll_alg_name strings.
  // Only algorithms actually selected appear — reports stay small and a
  // future algorithm addition does not churn every checked-in baseline.
  Json algs = Json::object();
  for (std::size_t i = 0; i < sim::kNumCollAlgs; ++i) {
    const auto& s = c.per_alg[i];
    if (s.calls == 0 && s.messages == 0 && s.bytes_out == 0) continue;
    Json a = Json::object();
    a.set("calls", s.calls);
    a.set("messages", s.messages);
    a.set("bytes_out", s.bytes_out);
    algs.set(sim::coll_alg_name(static_cast<sim::CollAlg>(i)), std::move(a));
  }
  e.set("algorithms", std::move(algs));
  return e;
}

sim::CommStats comm_from_json(const Json& j) {
  sim::CommStats c;
  c.p2p_messages = j.at("p2p_messages").u64_or();
  c.p2p_bytes = j.at("p2p_bytes").u64_or();
  c.collectives = j.at("collectives").u64_or();
  c.collective_bytes_out = j.at("collective_bytes_out").u64_or();
  c.collective_messages = j.at("collective_messages").u64_or();
  const Json& algs = j.at("algorithms");
  for (std::size_t i = 0; i < sim::kNumCollAlgs; ++i) {
    const Json& a = algs.at(sim::coll_alg_name(static_cast<sim::CollAlg>(i)));
    c.per_alg[i].calls = a.at("calls").u64_or();
    c.per_alg[i].messages = a.at("messages").u64_or();
    c.per_alg[i].bytes_out = a.at("bytes_out").u64_or();
  }
  return c;
}

}  // namespace

void RunReport::set_param(const std::string& key, std::string value) {
  for (auto& [k, v] : params) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  params.emplace_back(key, std::move(value));
}

const std::string* RunReport::find_param(const std::string& key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

void set_refinement(RunReport& r, const RefineStats& s) {
  r.has_refinement = true;
  r.refinement = s;
}

void add_spill(RunReport& r, const SpillStats& s) {
  r.has_spill = true;
  r.spill_runs_written += s.runs_written;
  r.spill_frames_written += s.frames_written;
  r.spill_bytes_spilled += s.bytes_spilled;
  r.spill_bytes_reloaded += s.bytes_reloaded;
  if (s.merge_passes > r.spill_merge_passes) {
    r.spill_merge_passes = s.merge_passes;
  }
  if (s.peak_resident_records > r.spill_peak_resident_records) {
    r.spill_peak_resident_records = s.peak_resident_records;
  }
}

void set_trace(RunReport& r, const trace::TraceAnalysis& a) {
  r.has_trace = true;
  r.trace_lambda_records = a.lambda_records;
  r.trace_blocked_frac = a.blocked_frac;
  r.trace_events = a.total_events;
  r.trace_phases.clear();
  for (const trace::PhaseStat& s : a.phases) {
    RunReport::TracePhase p;
    p.name = s.name;
    p.critical_rank = s.critical_rank;
    p.max_s = s.max_s;
    p.avg_s = s.avg_s;
    p.lambda = s.lambda;
    p.margin_s = s.margin_s;
    p.blocked_s = s.blocked_s;
    r.trace_phases.push_back(std::move(p));
  }
}

void set_metrics(RunReport& r, const obs::MetricsSnapshot& s) {
  r.has_metrics = true;
  r.metrics = s;
}

Json to_json(const RunReport& r) {
  Json j = Json::object();
  j.set("name", r.name);
  j.set("experiment", r.experiment);
  j.set("algorithm", r.algorithm);
  j.set("workload", r.workload);

  Json params = Json::object();
  for (const auto& [k, v] : r.params) params.set(k, v);
  j.set("params", std::move(params));

  Json cluster = Json::object();
  cluster.set("ranks", r.ranks);
  cluster.set("cores_per_node", r.cores_per_node);
  cluster.set("net_latency_s", r.net_latency_s);
  cluster.set("net_bandwidth_Bps", r.net_bandwidth_Bps);
  j.set("cluster", std::move(cluster));

  Json outcome = Json::object();
  outcome.set("ok", r.ok);
  outcome.set("oom", r.oom);
  outcome.set("failure_class", r.failure_class);
  if (!r.failure_detail.empty()) {
    outcome.set("failure_detail", r.failure_detail);
  }
  outcome.set("failed_rank", r.failed_rank);
  outcome.set("wall_seconds", r.wall_seconds);
  outcome.set("crit_path_cpu_seconds", r.crit_path_cpu_seconds);
  j.set("outcome", std::move(outcome));

  if (r.has_chaos) {
    Json chaos = Json::object();
    chaos.set("seed", r.chaos_seed);
    chaos.set("jittered_messages", r.jittered_messages);
    Json events = Json::array();
    for (const sim::FaultEvent& e : r.fault_events) {
      Json ev = Json::object();
      ev.set("kind", std::string(sim::fault_kind_name(e.kind)));
      ev.set("rank", e.rank);
      ev.set("op_index", e.op_index);
      ev.set("seconds", e.seconds);
      events.push_back(std::move(ev));
    }
    chaos.set("fault_events", std::move(events));
    j.set("chaos", std::move(chaos));
  }

  Json phases = Json::object();
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const auto p = static_cast<Phase>(i);
    phases.set(std::string(phase_name(p)), phase_entry(r.phases, p));
  }
  Json total = Json::object();
  total.set("wall_s", r.phases.total());
  total.set("cpu_s", r.phases.cpu_total());
  phases.set("total", std::move(total));
  if (!r.phases_per_rank.empty()) {
    // Compact fixed-position rows (same convention as comm.per_rank):
    // [wall_0, cpu_0, wall_1, cpu_1, ...] in phase-enum order — the full
    // per-rank distribution behind the max-over-ranks entries above.
    Json per_rank = Json::array();
    for (const PhaseLedger& l : r.phases_per_rank) {
      Json row = Json::array();
      for (std::size_t i = 0; i < kNumPhases; ++i) {
        const auto p = static_cast<Phase>(i);
        row.push_back(l.seconds(p));
        row.push_back(l.cpu_seconds(p));
      }
      per_rank.push_back(std::move(row));
    }
    phases.set("per_rank", std::move(per_rank));
  }
  j.set("phases", std::move(phases));

  Json comm = comm_entry(r.comm_total);
  comm.set("total_bytes", r.comm_total.total_bytes());
  Json per_rank = Json::array();
  for (const sim::CommStats& c : r.comm_per_rank) {
    // Compact fixed-position row: [p2p_messages, p2p_bytes, collectives,
    // collective_bytes_out, collective_messages] — 256-rank runs stay
    // readable and small. New columns append; the reader accepts >= 4.
    Json row = Json::array();
    row.push_back(c.p2p_messages);
    row.push_back(c.p2p_bytes);
    row.push_back(c.collectives);
    row.push_back(c.collective_bytes_out);
    row.push_back(c.collective_messages);
    per_rank.push_back(std::move(row));
  }
  comm.set("per_rank", std::move(per_rank));
  j.set("comm", std::move(comm));

  Json lb = Json::object();
  lb.set("rdfa", r.rdfa);
  lb.set("max_load", r.max_load);
  lb.set("total_records", r.total_records);
  j.set("load_balance", std::move(lb));

  if (r.has_kernel) {
    Json kernel = Json::object();
    kernel.set("bytes_moved", r.kernel_bytes_moved);
    kernel.set("scratch_bytes", r.kernel_scratch_bytes);
    kernel.set("heap_allocs", r.kernel_heap_allocs);
    kernel.set("arena_hwm", r.kernel_arena_hwm);
    if (r.has_kernel_simd) {
      kernel.set("merge_gallop_bytes", r.kernel_merge_gallop_bytes);
      Json simd = Json::object();
      simd.set("isa", r.kernel_simd_isa);
      simd.set("lanes_u64", r.kernel_simd_lanes);
      simd.set("hist_calls", r.kernel_simd_hist_calls);
      simd.set("sortnet_calls", r.kernel_simd_sortnet_calls);
      simd.set("gallop_calls", r.kernel_simd_gallop_calls);
      kernel.set("simd", std::move(simd));
    }
    j.set("kernel", std::move(kernel));
  }

  if (r.has_refinement) {
    const RefineStats& s = r.refinement;
    Json ref = Json::object();
    ref.set("rounds", s.rounds);
    ref.set("hit_round_cap", s.hit_round_cap);
    ref.set("total_records", s.total_records);
    ref.set("tolerance_records", s.tolerance_records);
    ref.set("target_epsilon", s.target_epsilon);
    ref.set("achieved_epsilon", s.achieved_epsilon);
    ref.set("fractional_splitters", s.fractional_splitters);
    // Compact fixed-position rows: [candidates, unique_candidates,
    // active_targets, comm_bytes, max_err] per round. New columns append;
    // the reader accepts >= 4.
    Json rounds = Json::array();
    for (const RefineRound& rr : s.per_round) {
      Json row = Json::array();
      row.push_back(rr.candidates);
      row.push_back(rr.unique_candidates);
      row.push_back(rr.active_targets);
      row.push_back(rr.comm_bytes);
      row.push_back(rr.max_err);
      rounds.push_back(std::move(row));
    }
    ref.set("per_round", std::move(rounds));
    Json partition = Json::object();
    partition.set("refinement", std::move(ref));
    j.set("partition", std::move(partition));
  }

  if (r.has_spill) {
    Json spill = Json::object();
    spill.set("runs_written", r.spill_runs_written);
    spill.set("frames_written", r.spill_frames_written);
    spill.set("bytes_spilled", r.spill_bytes_spilled);
    spill.set("bytes_reloaded", r.spill_bytes_reloaded);
    spill.set("merge_passes", r.spill_merge_passes);
    spill.set("peak_resident_records", r.spill_peak_resident_records);
    j.set("spill", std::move(spill));
  }

  if (r.has_metrics) j.set("metrics", obs::to_json(r.metrics));

  if (r.has_trace) {
    Json trace = Json::object();
    trace.set("lambda_records", r.trace_lambda_records);
    trace.set("blocked_frac", r.trace_blocked_frac);
    trace.set("events", r.trace_events);
    Json tp = Json::object();
    for (const RunReport::TracePhase& p : r.trace_phases) {
      Json e = Json::object();
      e.set("critical_rank", p.critical_rank);
      e.set("max_s", p.max_s);
      e.set("avg_s", p.avg_s);
      e.set("lambda", p.lambda);
      e.set("margin_s", p.margin_s);
      e.set("blocked_s", p.blocked_s);
      tp.set(p.name, std::move(e));
    }
    trace.set("phases", std::move(tp));
    j.set("trace", std::move(trace));
  }
  return j;
}

RunReport report_from_json(const Json& j) {
  RunReport r;
  r.name = j.at("name").string_value();
  r.experiment = j.at("experiment").string_value();
  r.algorithm = j.at("algorithm").string_value();
  r.workload = j.at("workload").string_value();
  for (const auto& [k, v] : j.at("params").members()) {
    r.params.emplace_back(k, v.string_value());
  }

  const Json& cluster = j.at("cluster");
  r.ranks = static_cast<int>(cluster.at("ranks").number_or());
  r.cores_per_node =
      static_cast<int>(cluster.at("cores_per_node").number_or(1));
  r.net_latency_s = cluster.at("net_latency_s").number_or();
  r.net_bandwidth_Bps = cluster.at("net_bandwidth_Bps").number_or();

  const Json& outcome = j.at("outcome");
  r.ok = outcome.at("ok").bool_or(true);
  r.oom = outcome.at("oom").bool_or(false);
  r.failure_class = outcome.at("failure_class").string_or("none");
  r.failure_detail = outcome.at("failure_detail").string_or("");
  r.failed_rank = static_cast<int>(outcome.at("failed_rank").number_or(-1.0));
  r.wall_seconds = outcome.at("wall_seconds").number_or(-1.0);
  r.crit_path_cpu_seconds = outcome.at("crit_path_cpu_seconds").number_or();

  if (const Json* chaos = j.find("chaos")) {
    r.has_chaos = true;
    r.chaos_seed = chaos->at("seed").u64_or();
    r.jittered_messages = chaos->at("jittered_messages").u64_or();
    for (const Json& ev : chaos->at("fault_events").items()) {
      sim::FaultEvent e;
      e.kind = sim::fault_kind_from_name(ev.at("kind").string_value().c_str());
      e.rank = static_cast<int>(ev.at("rank").number_or(-1.0));
      e.op_index = ev.at("op_index").u64_or();
      e.seconds = ev.at("seconds").number_or();
      r.fault_events.push_back(e);
    }
  }

  const Json& phases = j.at("phases");
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const auto p = static_cast<Phase>(i);
    const Json& e = phases.at(std::string(phase_name(p)));
    r.phases.add(p, e.at("wall_s").number_or(), e.at("cpu_s").number_or());
  }
  if (const Json* per_rank = phases.find("per_rank")) {
    for (const Json& row : per_rank->items()) {
      PhaseLedger l;
      const auto& cells = row.items();
      for (std::size_t i = 0; i < kNumPhases; ++i) {
        if (2 * i + 1 >= cells.size()) break;
        l.add(static_cast<Phase>(i), cells[2 * i].number_or(),
              cells[2 * i + 1].number_or());
      }
      r.phases_per_rank.push_back(l);
    }
  }

  const Json& comm = j.at("comm");
  r.comm_total = comm_from_json(comm);
  for (const Json& row : comm.at("per_rank").items()) {
    sim::CommStats c;
    const auto& cells = row.items();
    if (cells.size() >= 4) {
      c.p2p_messages = cells[0].u64_or();
      c.p2p_bytes = cells[1].u64_or();
      c.collectives = cells[2].u64_or();
      c.collective_bytes_out = cells[3].u64_or();
      if (cells.size() >= 5) c.collective_messages = cells[4].u64_or();
    }
    r.comm_per_rank.push_back(c);
  }

  const Json& lb = j.at("load_balance");
  r.rdfa = lb.at("rdfa").number_or();
  r.max_load = lb.at("max_load").u64_or();
  r.total_records = lb.at("total_records").u64_or();

  if (const Json* kernel = j.find("kernel")) {
    r.has_kernel = true;
    r.kernel_bytes_moved = kernel->at("bytes_moved").u64_or();
    r.kernel_scratch_bytes = kernel->at("scratch_bytes").u64_or();
    r.kernel_heap_allocs = kernel->at("heap_allocs").u64_or();
    r.kernel_arena_hwm = kernel->at("arena_hwm").u64_or();
    if (const Json* simd = kernel->find("simd")) {
      r.has_kernel_simd = true;
      r.kernel_merge_gallop_bytes = kernel->at("merge_gallop_bytes").u64_or();
      r.kernel_simd_isa = simd->at("isa").string_value();
      r.kernel_simd_lanes = static_cast<int>(simd->at("lanes_u64").u64_or(1));
      r.kernel_simd_hist_calls = simd->at("hist_calls").u64_or();
      r.kernel_simd_sortnet_calls = simd->at("sortnet_calls").u64_or();
      r.kernel_simd_gallop_calls = simd->at("gallop_calls").u64_or();
    }
  }

  if (const Json* partition = j.find("partition")) {
    if (const Json* ref = partition->find("refinement")) {
      r.has_refinement = true;
      RefineStats& s = r.refinement;
      s.rounds = static_cast<int>(ref->at("rounds").number_or());
      s.hit_round_cap = ref->at("hit_round_cap").bool_or(false);
      s.total_records = ref->at("total_records").u64_or();
      s.tolerance_records = ref->at("tolerance_records").u64_or();
      s.target_epsilon = ref->at("target_epsilon").number_or();
      s.achieved_epsilon = ref->at("achieved_epsilon").number_or();
      s.fractional_splitters = ref->at("fractional_splitters").u64_or();
      for (const Json& row : ref->at("per_round").items()) {
        const auto& cells = row.items();
        RefineRound rr;
        if (cells.size() >= 4) {
          rr.candidates = cells[0].u64_or();
          rr.unique_candidates = cells[1].u64_or();
          rr.active_targets = cells[2].u64_or();
          rr.comm_bytes = cells[3].u64_or();
          if (cells.size() >= 5) rr.max_err = cells[4].u64_or();
        }
        s.per_round.push_back(rr);
      }
    }
  }

  if (const Json* spill = j.find("spill")) {
    r.has_spill = true;
    r.spill_runs_written = spill->at("runs_written").u64_or();
    r.spill_frames_written = spill->at("frames_written").u64_or();
    r.spill_bytes_spilled = spill->at("bytes_spilled").u64_or();
    r.spill_bytes_reloaded = spill->at("bytes_reloaded").u64_or();
    r.spill_merge_passes = spill->at("merge_passes").u64_or();
    r.spill_peak_resident_records =
        spill->at("peak_resident_records").u64_or();
  }

  // Optional subobject: reports written before the metrics layer existed
  // (or with metrics disabled) parse cleanly with has_metrics = false.
  if (const Json* metrics = j.find("metrics")) {
    r.has_metrics = true;
    r.metrics = obs::metrics_snapshot_from_json(*metrics);
  }

  if (const Json* trace = j.find("trace")) {
    r.has_trace = true;
    r.trace_lambda_records = trace->at("lambda_records").number_or();
    r.trace_blocked_frac = trace->at("blocked_frac").number_or();
    r.trace_events = trace->at("events").u64_or();
    for (const auto& [name, e] : trace->at("phases").members()) {
      RunReport::TracePhase p;
      p.name = name;
      p.critical_rank = static_cast<int>(e.at("critical_rank").number_or(-1));
      p.max_s = e.at("max_s").number_or();
      p.avg_s = e.at("avg_s").number_or();
      p.lambda = e.at("lambda").number_or();
      p.margin_s = e.at("margin_s").number_or();
      p.blocked_s = e.at("blocked_s").number_or();
      r.trace_phases.push_back(std::move(p));
    }
  }
  return r;
}

RunReport& ReportRegistry::add(RunReport r) {
  reports_.push_back(std::move(r));
  return reports_.back();
}

const RunReport* ReportRegistry::find(const std::string& name) const {
  for (const RunReport& r : reports_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

Json ReportRegistry::to_json() const {
  Json file = Json::object();
  file.set("schema_version", kReportSchemaVersion);
  file.set("generator", kReportGenerator);
  Json arr = Json::array();
  for (const RunReport& r : reports_) arr.push_back(telemetry::to_json(r));
  file.set("reports", std::move(arr));
  return file;
}

void ReportRegistry::write(std::ostream& os) const {
  to_json().write(os, 2);
  os << '\n';
}

ReportRegistry ReportRegistry::load(const Json& file) {
  const int version =
      static_cast<int>(file.at("schema_version").number_or(-1));
  if (version < 1 || version > kReportSchemaVersion) {
    throw Error("unsupported report schema_version " +
                std::to_string(version) + " (this build reads <= " +
                std::to_string(kReportSchemaVersion) + ")");
  }
  ReportRegistry reg;
  for (const Json& r : file.at("reports").items()) {
    reg.add(report_from_json(r));
  }
  return reg;
}

ReportRegistry ReportRegistry::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open report file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return load(Json::parse(buf.str()));
}

std::string report_path_from_cmdline_or_env() {
  // Bench mains are argv-less `int main()`; /proc/self/cmdline recovers the
  // flag anyway (NUL-separated argv). Best-effort: on any failure fall back
  // to the environment variable.
  std::ifstream cmdline("/proc/self/cmdline", std::ios::binary);
  if (cmdline) {
    std::ostringstream buf;
    buf << cmdline.rdbuf();
    const std::string raw = buf.str();
    std::vector<std::string> argv;
    std::size_t start = 0;
    while (start < raw.size()) {
      const std::size_t end = raw.find('\0', start);
      argv.push_back(raw.substr(start, end - start));
      if (end == std::string::npos) break;
      start = end + 1;
    }
    for (std::size_t i = 0; i < argv.size(); ++i) {
      if (argv[i] == "--json" && i + 1 < argv.size()) return argv[i + 1];
      if (argv[i].rfind("--json=", 0) == 0) return argv[i].substr(7);
    }
  }
  const char* env = std::getenv("SDSS_BENCH_JSON");
  return env != nullptr ? env : "";
}

}  // namespace sdss::telemetry
