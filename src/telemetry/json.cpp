#include "telemetry/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace sdss::telemetry {

namespace {

// Shortest round-trip rendering (std::to_chars general form): 5.0 -> "5",
// 0.1 -> "0.1", 1e-9 -> "1e-09". Non-finite values have no JSON spelling;
// emit null like every pragmatic serializer does.
void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  os.write(buf, res.ptr - buf);
}


void newline_indent(std::ostream& os, int indent, int depth) {
  if (indent <= 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

// --- recursive-descent parser --------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json();
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // The writer only emits \u for control characters; decode the
          // BMP code point as UTF-8 and reject surrogates.
          if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double v = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ ||
        pos_ == start) {
      pos_ = start;
      fail("invalid number");
    }
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw Error("Json::push_back on non-array");
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

Json& Json::set(std::string key, Json v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw Error("Json::set on non-object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  static const Json kNull;
  const Json* v = find(key);
  return v != nullptr ? *v : kNull;
}

bool Json::operator==(const Json& o) const {
  if (type_ != o.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == o.bool_;
    case Type::kNumber:
      return num_ == o.num_;
    case Type::kString:
      return str_ == o.str_;
    case Type::kArray:
      return arr_ == o.arr_;
    case Type::kObject:
      return obj_ == o.obj_;
  }
  return false;
}

void Json::write_indented(std::ostream& os, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      os << "null";
      break;
    case Type::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      write_number(os, num_);
      break;
    case Type::kString:
      write_json_string(os, str_);
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) os << ',';
        newline_indent(os, indent, depth + 1);
        arr_[i].write_indented(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) os << ',';
        first = false;
        newline_indent(os, indent, depth + 1);
        write_json_string(os, k);
        os << (indent > 0 ? ": " : ":");
        v.write_indented(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

void Json::write(std::ostream& os, int indent) const {
  write_indented(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace sdss::telemetry
