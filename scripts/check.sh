#!/usr/bin/env bash
# One-command repo health check: configure, build, test, then smoke the
# telemetry path — run one fast bench with --json and validate the emitted
# run-report file (report_diff file file exits 0 iff the file parses and
# matches itself). See docs/BENCHMARKING.md.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j

echo "== tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== telemetry smoke =="
report="$(mktemp /tmp/sdss-check-XXXXXX.json)"
trap 'rm -f "$report"' EXIT
"$BUILD_DIR"/bench/fig5c_local_ordering --json "$report"
test -s "$report" || { echo "check: no report file written" >&2; exit 1; }
"$BUILD_DIR"/bench/report_diff "$report" "$report"

echo "== OK =="
