#!/usr/bin/env bash
# One-command repo health check: configure, build, test, then smoke the
# telemetry path — run one fast bench with --json and validate the emitted
# run-report file (report_diff file file exits 0 iff the file parses and
# matches itself) — then gate the collective wire-volume counters and the
# local-sort kernel memory counters against their checked-in baselines,
# enforce the always-on tracing overhead bound and the deterministic
# received-record skew (lambda) baseline, enforce the always-on metrics
# overhead bound with its exact counter baseline and series determinism,
# verify forced OOM/deadlock/spill-io failures each leave a well-formed
# flight-recorder bundle (rendered by postmortem_analyze --strict), gate
# the large-P fiber-scheduler
# sweep (full sort at up to 4096 ranks) against its counter baseline, run
# the fixed-seed chaos soak (crash-point sweep + straggler/jitter runs),
# gate the out-of-core spill path (exact spill counters + output vs its
# baseline) and soak every spill-fault injection point, build a scalar-only
# leg (-DSDSS_FORCE_SCALAR=ON) and differentially check it against the
# vectorized build, and run the collective, thread-pool, sortcore,
# SIMD-kernel, chaos, spill, trace, and scheduler tests under
# ThreadSanitizer. See docs/BENCHMARKING.md.
#
# Environment knobs:
#   BUILD_DIR       build tree (default: build)
#   SDSS_NO_TSAN    set to 1 to skip the ThreadSanitizer step (it builds a
#                   second tree under $BUILD_DIR-tsan)
#   SDSS_NO_SCALAR  set to 1 to skip the scalar-only leg (it builds a
#                   second tree under $BUILD_DIR-scalar)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j

echo "== tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== telemetry smoke =="
report="$(mktemp /tmp/sdss-check-XXXXXX.json)"
trap 'rm -f "$report"' EXIT
"$BUILD_DIR"/bench/fig5c_local_ordering --json "$report"
test -s "$report" || { echo "check: no report file written" >&2; exit 1; }
"$BUILD_DIR"/bench/report_diff "$report" "$report"

echo "== collective wire-volume gate =="
# bench_collectives runs a FIXED iteration count, so its CommStats byte and
# message counters are machine-independent; any drift from the checked-in
# baseline is a real change in collective wire traffic. Refresh the baseline
# deliberately (and explain why in the commit) when an algorithm change is
# intended:  build/bench/bench_collectives --json bench/baselines/bench_collectives.json
"$BUILD_DIR"/bench/bench_collectives --json "$report" >/dev/null
"$BUILD_DIR"/bench/report_diff bench/baselines/bench_collectives.json \
    "$report" --bytes-only

echo "== local sort kernel gate =="
# bench_local_sort gates three ways: its exit status enforces the in-process
# >= 1.5x speedup of the arena-backed SIMD engine over the frozen legacy
# engine on duplicate-heavy partially-ordered keys (plus zero steady-state
# kernel heap allocations) and the >= 1.2x scalar-vs-SIMD sorting-network
# ablation (skipped with a notice on scalar-only hosts/builds), and its
# single-thread kernel memory + SIMD dispatch counters are exactly
# reproducible and diffed against the checked-in baseline. Refresh with:
#   build/bench/bench_local_sort --json bench/baselines/bench_local_sort.json
"$BUILD_DIR"/bench/bench_local_sort --json "$report" >/dev/null
"$BUILD_DIR"/bench/report_diff bench/baselines/bench_local_sort.json \
    "$report" --bytes-only

echo "== tracing overhead + skew gate =="
# bench_trace's exit status enforces the always-on tracing promise (traced
# min critical-path CPU <= untraced * 1.05 + 0.05s, interleaved reps), and
# its traced fixed-seed report carries the deterministic per-rank
# received-record skew. trace_analyze --gate diffs that lambda against the
# checked-in baseline: growth means the partitioner got worse at skew.
# Refresh deliberately with:
#   build/bench/bench_trace --json bench/baselines/bench_trace.json
"$BUILD_DIR"/bench/bench_trace --json "$report"
"$BUILD_DIR"/bench/trace_analyze "$report" \
    --gate=bench/baselines/bench_trace.json

echo "== metrics overhead + counter gate =="
# bench_metrics's exit status enforces the always-on metrics promise
# (metered min critical-path CPU <= unmetered * 1.05 + 0.05s, interleaved
# reps) and the series determinism contract (progress series byte-identical
# across sched_workers 1 and 4). The fixed-seed metered report's counters,
# gauges, byte histograms and progress series are deterministic and gate
# exactly against the checked-in baseline (nanos histograms are machine
# properties and are never diffed). Refresh deliberately with:
#   build/bench/bench_metrics --json bench/baselines/bench_metrics.json
"$BUILD_DIR"/bench/bench_metrics --json "$report"
"$BUILD_DIR"/bench/report_diff bench/baselines/bench_metrics.json \
    "$report" --bytes-only

echo "== flight recorder (forced-failure bundles) =="
# Force an OOM, a deadlock and a spill-io failure; each must leave a
# post-mortem bundle that parses, classifies correctly and carries a full
# blocked-op table — then postmortem_analyze --strict must render all three
# (it exits nonzero on a malformed bundle, an empty blocked-op table, or a
# missing metrics snapshot).
pmdir="$(mktemp -d /tmp/sdss-postmortem-XXXXXX)"
trap 'rm -f "$report"; rm -rf "$pmdir"' EXIT
"$BUILD_DIR"/bench/bench_metrics --forced-failures --outdir="$pmdir"
"$BUILD_DIR"/bench/postmortem_analyze --strict \
    "$pmdir"/oom.json "$pmdir"/deadlock.json "$pmdir"/spill-io.json >/dev/null

echo "== scheduler scale gate (256..4096 fiber ranks) =="
# bench_sched_scale runs the full sort at P in {256, 1024, 4096} on the
# fiber scheduler with a fixed shard and no network model. It is both the
# large-P smoke test (a lost wakeup or handoff bug deadlocks or crashes it
# — the in-sim watchdog, not this script's patience, catches a hang) and a
# determinism gate: the cluster-total message/byte counters are exactly
# reproducible and diffed against the checked-in baseline. Refresh with:
#   build/bench/bench_sched_scale --json bench/baselines/bench_sched_scale.json
"$BUILD_DIR"/bench/bench_sched_scale --json "$report" >/dev/null
"$BUILD_DIR"/bench/report_diff bench/baselines/bench_sched_scale.json \
    "$report" --bytes-only

echo "== splitter-selection gate (eps-bounded lambda, P=64 + P=1024) =="
# ablation_splitters sweeps sampling / legacy histogram / ε-bounded / hybrid
# splitter selection over uniform, Zipf(1.5), two-value and all-duplicate
# workloads under a 3x memory budget. Its exit status enforces the ε
# contract — every kHistogramEps run completes with lambda(recv_records)
# <= 1+ε where one-shot sampling OOMs, and the per-round refinement
# candidate gathers shrink monotonically — and its comm + refinement
# counters and trace lambda are fixed-seed deterministic, diffed against
# the checked-in baseline. Refresh deliberately with:
#   build/bench/ablation_splitters --json bench/baselines/ablation_splitters.json
"$BUILD_DIR"/bench/ablation_splitters --json "$report" >/dev/null
"$BUILD_DIR"/bench/report_diff bench/baselines/ablation_splitters.json \
    "$report" --bytes-only

echo "== chaos soak (fixed-seed fault injection) =="
# chaos_soak force-crashes a victim rank at swept comm-op indices for each of
# the three distributed sorts, then runs straggler and delivery-jitter
# endurance seeds. Every run must terminate with the expected classification;
# a hang would trip the in-sim deadlock watchdog (and the nonzero exit), not
# this script's patience. --quick thins the sweep for CI; drop it to sweep
# every rank at every op index.
"$BUILD_DIR"/bench/chaos_soak --quick

echo "== out-of-core spill gate =="
# bench_spill runs the Fig. 8 Zipf shape at a budget where HykSort and
# strict SDS-Sort must OOM; the spill policy must complete with per-rank
# output byte-identical to the unlimited in-core reference, bounded
# slowdown, and spill run/frame/byte/pass counters EXACTLY equal to the
# checked-in baseline (enforced in-process; the report_diff leg additionally
# gates the comm counters). Refresh deliberately with:
#   build/bench/bench_spill --no-gate --json bench/baselines/bench_spill.json
"$BUILD_DIR"/bench/bench_spill --json "$report"
"$BUILD_DIR"/bench/report_diff bench/baselines/bench_spill.json \
    "$report" --bytes-only

echo "== spill-fault soak (every rank x spill-op injection point) =="
# Sweeps a forced spill-write failure and a forced frame corruption over
# every (rank, spill op) of a spill-mode sort, plus slow-disk endurance
# under a tight watchdog, a comm-crash leg, and fault-free tight-watchdog
# runs. Exits nonzero on any unexpected failure classification.
"$BUILD_DIR"/bench/bench_spill --chaos

if [[ "${SDSS_NO_SCALAR:-0}" != "1" ]]; then
  echo "== scalar-only leg (-DSDSS_FORCE_SCALAR=ON) =="
  # The portable scalar kernels are a first-class build, not a dusty
  # fallback: compile the whole library with every vector variant compiled
  # out, rerun the sortcore + SIMD-kernel differential suites (they compare
  # sorted output against std::sort/std::stable_sort, so green here plus
  # green above means the two builds produce bit-identical output), and
  # rerun bench_local_sort — its dispatch/byte counters are ISA-independent
  # by design, so the SAME baseline must match; its ablation gate logs a
  # skip notice on this leg.
  cmake -B "$BUILD_DIR-scalar" -S . -DSDSS_FORCE_SCALAR=ON >/dev/null
  cmake --build "$BUILD_DIR-scalar" -j --target test_sortcore \
      test_simd_kernels bench_local_sort report_diff
  "$BUILD_DIR-scalar"/tests/test_sortcore
  "$BUILD_DIR-scalar"/tests/test_simd_kernels
  "$BUILD_DIR-scalar"/bench/bench_local_sort --json "$report" >/dev/null
  "$BUILD_DIR-scalar"/bench/report_diff bench/baselines/bench_local_sort.json \
      "$report" --bytes-only
fi

if [[ "${SDSS_NO_TSAN:-0}" != "1" ]]; then
  echo "== thread sanitizer (collective + sortcore/pool + scheduler tests) =="
  # test_sched runs with the multi-worker pool enabled, so TSan watches the
  # fiber handoff (off_cpu acquire/release) and the trace-lane rebinding.
  cmake -B "$BUILD_DIR-tsan" -S . -DSDSS_SANITIZE=thread >/dev/null
  cmake --build "$BUILD_DIR-tsan" -j --target test_collectives test_sim_comm \
      test_par test_sortcore test_simd_kernels test_chaos test_spill \
      test_trace test_sched test_splitters test_metrics
  "$BUILD_DIR-tsan"/tests/test_collectives
  "$BUILD_DIR-tsan"/tests/test_sim_comm
  "$BUILD_DIR-tsan"/tests/test_par
  "$BUILD_DIR-tsan"/tests/test_sortcore
  "$BUILD_DIR-tsan"/tests/test_simd_kernels
  "$BUILD_DIR-tsan"/tests/test_chaos
  # Spill drains + the external merge run under the multi-worker fiber pool
  # here: a race on the spill-op counters or the resident accounting would
  # surface.
  "$BUILD_DIR-tsan"/tests/test_spill
  "$BUILD_DIR-tsan"/tests/test_trace
  "$BUILD_DIR-tsan"/tests/test_sched
  # The ε-bounded splitter engine's collectives + fractional partition run
  # across the P=64 fiber pool here: races in the allgatherv/allreduce_vec
  # payload paths or the exscan-based duplicate split would surface.
  "$BUILD_DIR-tsan"/tests/test_splitters
  # The metrics registry's single-writer atomics, the sampler fiber's
  # concurrent gauge reads, and the flight-recorder snapshot path run under
  # the multi-worker pool here: a racy cell or an unpublished histogram
  # block would surface.
  "$BUILD_DIR-tsan"/tests/test_metrics
fi

echo "== OK =="
